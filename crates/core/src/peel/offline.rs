//! Offline (Julienne-style) histogram peeling, generic over
//! [`PeelProblem`]s.
//!
//! The online driver discovers `DecreaseKey`s with per-target atomic
//! decrements. The offline driver (Julienne's `Peel`, the paper's
//! online/offline ablation axis) avoids per-target atomics entirely:
//! per subround it
//!
//! 1. settles the frontier (an exclusive phase, so later reads see a
//!    stable snapshot),
//! 2. **gathers** every priority decrement the frontier causes into one
//!    list `L` (with duplicates) — live incident elements for
//!    [`Incidence::Unit`] problems, the rule's emitted targets for
//!    [`Incidence::Snapshot`] problems,
//! 3. **histograms** `L` — `(element, multiplicity)` pairs, the number
//!    of units each element just lost (see
//!    [`kcore_parallel::histogram`]; the paper uses a parallel semisort
//!    here),
//! 4. **applies** the bulk decrements: each element's priority drops by
//!    its multiplicity, clamped at the current round `k`; elements
//!    landing on `k` form the next frontier, the rest re-file in the
//!    bucket structure.
//!
//! The price is synchronization: three global syncs per subround
//! instead of one, which is exactly how the burdened span accounts it
//! (`record_subround(3, …)`; Fig. 9's online/offline gap).
//!
//! [`range_membership`] reuses the machinery for the *range* form: to
//! extract one k-core, every element of priority `< k` is pulled in a
//! single bulk step ([`BucketStructure::next_frontier_range`]) and the
//! cascade needs no round ordering at all — the serving path for
//! individual core queries ([`crate::Decomposition::members`]).

use super::engine::{
    upgrade_adaptive_if_due, Incidence, LiveView, PeelProblem, SettleView, SnapshotRule,
    UnitIncidence, UNSET,
};
use crate::config::{Config, HistogramKind, Offline};
use kcore_buckets::{BucketStrategy, BucketStructure, SingleBucket};
use kcore_check::sync::atomic::{AtomicU32, Ordering};
use kcore_obs::span;
use kcore_parallel::histogram::{histogram_atomic, histogram_auto, histogram_sort};
use kcore_parallel::RunStats;
use rayon::prelude::*;

/// The offline decomposition driver. Sampling and VGC are online-only
/// refinements (they exist to temper the online driver's atomics and
/// subround synchronization) and are ignored here.
pub(crate) fn run<P: PeelProblem>(
    config: &Config,
    off: Offline,
    problem: &P,
    stats: &mut RunStats,
) -> Vec<u32> {
    let n = problem.num_elements();
    let init = problem.init_priorities();
    let prio: Vec<AtomicU32> = init.iter().map(|&d| AtomicU32::new(d)).collect();
    let settled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    let incidence = problem.incidence();
    // Subround stamps for snapshot rules (0 = never settled; ids start
    // at 1). Unit incidences read liveness from `settled` directly.
    let stamps: Vec<AtomicU32> = match incidence {
        Incidence::Snapshot(_) => (0..n).map(|_| AtomicU32::new(0)).collect(),
        Incidence::Unit(_) => Vec::new(),
        // The engine rejects offline × recompute before dispatching
        // (see `validate_combination`): recomputed priorities have no
        // decrement multiset to histogram.
        Incidence::Recompute(_) => unreachable!("offline driver rejected for Incidence::Recompute"),
    };
    let mut subround_id = 0u32;

    let mut bucket: Box<dyn BucketStructure> = config.bucket_strategy.build(&init);
    let mut adaptive_pending = matches!(config.bucket_strategy, BucketStrategy::Adaptive);

    let collect_stats = config.collect_stats;
    let max_prio = *init.iter().max().unwrap_or(&0);
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        assert!(k <= max_prio, "peeling stalled: {remaining} elements left after round {max_prio}");
        let _round = span!("round", k);
        let view = LiveView { prio: &prio, settled: &settled };
        upgrade_adaptive_if_due(
            &mut bucket,
            &mut adaptive_pending,
            k,
            config.adaptive_theta,
            n,
            &view,
        );
        let mut frontier = {
            let _drain = span!("bucket.drain", k);
            bucket.next_frontier(k, &view)
        };
        let mut subrounds = 0u32;
        while !frontier.is_empty() {
            subrounds += 1;
            subround_id += 1;
            let _subround = span!("subround", frontier.len());
            remaining -= frontier.len();
            if collect_stats {
                stats.max_frontier = stats.max_frontier.max(frontier.len());
                // Unit incidences charge the frontier's full incident
                // lists (the gather scans them all, live or not);
                // snapshot rules charge the emitted decrement list
                // below, which is the work they actually perform.
                stats.work += frontier.len() as u64;
                if let Incidence::Unit(inc) = incidence {
                    let arcs: usize = frontier.iter().map(|&v| inc.num_incident(v)).sum();
                    stats.work += arcs as u64;
                }
            }
            // 1. settle — exclusive phase, so the gather below reads a
            // stable snapshot.
            let settle_span = span!("settle", frontier.len());
            frontier.par_iter().for_each(|&v| {
                settled[v as usize].store(k, Ordering::Relaxed);
                if let Incidence::Snapshot(_) = incidence {
                    stamps[v as usize].store(subround_id, Ordering::Relaxed);
                }
                problem.on_settle(v, k);
            });
            drop(settle_span);
            // 2. gather the decrement list, with duplicates.
            let gather_span = span!("offline.gather", frontier.len());
            let gathered = match incidence {
                Incidence::Unit(inc) => gather_live(inc, &frontier, &settled),
                Incidence::Snapshot(rule) => {
                    let sview = SettleView::new(&stamps, subround_id);
                    gather_rule(rule, &frontier, k, &sview)
                }
                Incidence::Recompute(_) => {
                    unreachable!("offline driver rejected for Incidence::Recompute")
                }
            };
            drop(gather_span);
            if collect_stats {
                if let Incidence::Snapshot(_) = incidence {
                    stats.work += gathered.len() as u64;
                }
            }
            // 3. histogram it.
            let hist_span = span!("offline.histogram", gathered.len());
            let hist = run_histogram(off.histogram, gathered, n);
            drop(hist_span);
            if collect_stats {
                stats.work += hist.len() as u64;
            }
            // 4. apply bulk decrements; hits on k form the next frontier.
            let apply_span = span!("offline.apply", hist.len());
            frontier = hist
                .par_iter()
                .filter_map(|&(u, c)| {
                    let u = u as usize;
                    if settled[u].load(Ordering::Relaxed) != UNSET {
                        return None;
                    }
                    let d = prio[u].load(Ordering::Relaxed);
                    debug_assert!(d > k, "live non-frontier elements sit above the round");
                    let nd = d.saturating_sub(c).max(k);
                    prio[u].store(nd, Ordering::Relaxed);
                    if nd == k {
                        Some(u as u32)
                    } else {
                        bucket.on_decrease(u as u32, d, nd, k);
                        None
                    }
                })
                .collect();
            drop(apply_span);
            if collect_stats {
                stats.record_subround(3, 1);
            }
        }
        if collect_stats {
            stats.record_round(subrounds);
        }
        k += 1;
    }
    settled.into_iter().map(AtomicU32::into_inner).collect()
}

/// Membership of the priority-`k` core by offline **range** peeling:
/// one bulk extraction of every element below `k`, then histogram
/// cascades until a fixpoint. No round ordering — removal order does
/// not affect the fixpoint — so the whole sub-`k` range peels as one
/// wave, which is why this is far cheaper than a full decomposition for
/// one query. Unit incidences only (the query is "degree at least `k`
/// within the surviving set").
pub(crate) fn range_membership(
    inc: &dyn UnitIncidence,
    init_priorities: &[u32],
    k: u32,
    off: Offline,
) -> Vec<bool> {
    let n = init_priorities.len();
    if n == 0 {
        return Vec::new();
    }
    let prio: Vec<AtomicU32> = init_priorities.iter().map(|&d| AtomicU32::new(d)).collect();
    // Reuse the settle array as the peeled marker (0 = peeled).
    let peeled: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    let mut bucket = SingleBucket::new(init_priorities);
    let view = LiveView { prio: &prio, settled: &peeled };
    let mut frontier = bucket.next_frontier_range(0, k, &view);
    while !frontier.is_empty() {
        frontier.par_iter().for_each(|&v| peeled[v as usize].store(0, Ordering::Relaxed));
        let gathered = gather_live(inc, &frontier, &peeled);
        let hist = run_histogram(off.histogram, gathered, n);
        frontier = hist
            .par_iter()
            .filter_map(|&(u, c)| {
                let u = u as usize;
                if peeled[u].load(Ordering::Relaxed) != UNSET {
                    return None;
                }
                let d = prio[u].load(Ordering::Relaxed);
                let nd = d.saturating_sub(c);
                prio[u].store(nd, Ordering::Relaxed);
                // Only the crossing below k enters the frontier, so each
                // element cascades at most once.
                (d >= k && nd < k).then_some(u as u32)
            })
            .collect();
    }
    peeled.iter().map(|m| m.load(Ordering::Relaxed) == UNSET).collect()
}

/// Every still-live incident element of the frontier, with duplicates —
/// the list `L` of Julienne's `Peel`. The settle phase completed before
/// this runs, so liveness reads are stable and the result is
/// deterministic.
fn gather_live(inc: &dyn UnitIncidence, frontier: &[u32], settled: &[AtomicU32]) -> Vec<u32> {
    let per_elem: Vec<Vec<u32>> = frontier
        .par_iter()
        .map(|&v| {
            let mut live = Vec::new();
            inc.for_each_incident(v, &mut |u| {
                if settled[u as usize].load(Ordering::Relaxed) == UNSET {
                    live.push(u);
                }
            });
            live
        })
        .collect();
    flatten(per_elem)
}

/// The decrement targets a snapshot rule emits for the settled
/// frontier, with duplicates. The settle phase (including stamps)
/// completed first, so the rule sees the same consistent snapshot as in
/// the online two-phase driver and the gathered multiset is
/// deterministic.
fn gather_rule(
    rule: &dyn SnapshotRule,
    frontier: &[u32],
    k: u32,
    view: &SettleView<'_>,
) -> Vec<u32> {
    let per_elem: Vec<Vec<u32>> = frontier
        .par_iter()
        .map(|&e| {
            let mut out = Vec::new();
            rule.for_each_decrement(e, k, view, &mut |t| out.push(t));
            out
        })
        .collect();
    flatten(per_elem)
}

fn flatten(parts: Vec<Vec<u32>>) -> Vec<u32> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Dispatches to the configured histogram implementation.
fn run_histogram(kind: HistogramKind, keys: Vec<u32>, domain: usize) -> Vec<(u32, u32)> {
    match kind {
        HistogramKind::Auto => histogram_auto(keys, domain),
        HistogramKind::Sort => histogram_sort(keys),
        HistogramKind::Atomic => histogram_atomic(&keys, domain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::bz_coreness;
    use crate::config::Techniques;
    use crate::{Config, Decomposition};
    use kcore_graph::{gen, CsrGraph};

    fn offline_config(kind: HistogramKind) -> Config {
        Config::with_techniques(Techniques {
            mode: crate::config::PeelMode::Offline(Offline { histogram: kind }),
            ..Techniques::default()
        })
    }

    #[test]
    fn every_histogram_kind_matches_the_oracle() {
        let g = gen::rmat(9, 8, 0.57, 0.19, 0.19, 5);
        let want = bz_coreness(&g);
        for kind in [HistogramKind::Auto, HistogramKind::Sort, HistogramKind::Atomic] {
            let got = Decomposition::kcore(&g).config(offline_config(kind)).run();
            assert_eq!(got.coreness(), want.as_slice(), "{kind:?}");
        }
    }

    #[test]
    fn offline_is_deterministic() {
        let g = gen::barabasi_albert(500, 3, 9);
        let a = Decomposition::kcore(&g).config(offline_config(HistogramKind::Auto)).run();
        let b = Decomposition::kcore(&g).config(offline_config(HistogramKind::Auto)).run();
        assert_eq!(a.coreness(), b.coreness());
        assert_eq!(a.stats().subrounds, b.stats().subrounds);
    }

    #[test]
    fn membership_of_trivial_cores() {
        let g = gen::path(10);
        let members = range_membership(&g, &g.degrees(), 0, Offline::default());
        assert!(members.iter().all(|&m| m), "the 0-core is everything");
        let members = range_membership(&g, &g.degrees(), 2, Offline::default());
        assert!(members.iter().all(|&m| !m), "a path has no 2-core");
    }

    #[test]
    fn membership_cascade_crosses_the_whole_graph() {
        // A path with a triangle at the end: the 2-core is exactly the
        // triangle, and finding it requires the removal cascade to run
        // down the entire path.
        let mut edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i, i + 1)).collect();
        edges.push((20, 21));
        edges.push((21, 22));
        edges.push((22, 20));
        let g = kcore_graph::GraphBuilder::new(23).edges(edges).build();
        let members = range_membership(&g, &g.degrees(), 2, Offline::default());
        for (v, &member) in members.iter().enumerate() {
            assert_eq!(member, v >= 20, "vertex {v}: only the triangle is in the 2-core");
        }
    }

    #[test]
    fn empty_graph_membership() {
        let g = CsrGraph::empty();
        assert!(range_membership(&g, &g.degrees(), 3, Offline::default()).is_empty());
    }
}
