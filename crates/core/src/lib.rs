//! k-core decomposition algorithms.
//!
//! The **k-core** of a graph is the maximal subgraph in which every
//! vertex has degree at least `k`; a vertex's **coreness** is the
//! largest `k` for which it belongs to the k-core. This crate computes
//! the coreness of every vertex with the paper's work-efficient
//! (`O(n + m)` expected) parallel peeling framework:
//!
//! * [`KCore`] — the parallel framework (Alg. 1): round `k` repeatedly
//!   peels the frontier of vertices with induced degree `k`, using
//!   atomic clamped decrements for `DecreaseKey` and a parallel hash
//!   bag for intra-round frontier collection. The per-round initial
//!   frontier comes from a pluggable [`BucketStrategy`] (single bucket,
//!   Julienne-style fixed window, HBS, or the adaptive hybrid).
//! * [`bz`] — the sequential Batagelj–Zaveršnik bucket algorithm, the
//!   `O(n + m)` baseline every parallel variant is tested against.
//!
//! The paper's Sec. 4 practical techniques plug into the framework
//! through the [`Techniques`] block of [`Config`]:
//!
//! * **Sampling** ([`Sampling`], Sec. 4.1) — high-degree vertices track
//!   an approximate induced degree over a hashed edge sample, shedding
//!   the decrement contention on hubs; exact recounts at every peel
//!   decision keep the output oracle-identical, and an undershoot that
//!   pollutes a frontier triggers a Las-Vegas restart.
//! * **Vertical granularity control** ([`Vgc`], Sec. 4.2) — workers
//!   chase local peel chains sequentially instead of bouncing every
//!   frontier hit through the hash bag, collapsing the tiny subrounds
//!   that dominate sparse graphs' burdened span.
//! * **Offline peeling** ([`PeelMode::Offline`]) — the Julienne-style
//!   histogram driver: gather the frontier's neighborhood, histogram
//!   it, apply bulk decrements; no per-edge atomics, three global
//!   syncs per subround. [`KCore::kcore_members`] reuses it to answer
//!   single-core queries by bulk range peeling.
//!
//! ```
//! use kcore::{Config, KCore, Techniques};
//! use kcore_graph::gen;
//!
//! // A 100x100 grid is a 2-core once the boundary peels inward.
//! let g = gen::grid2d(100, 100);
//! let result = KCore::new(Config::default()).run(&g);
//! assert_eq!(result.kmax(), 2);
//!
//! // Same answer with the full online techniques or the offline driver.
//! for techniques in [Techniques::all_online(), Techniques::offline()] {
//!     let r = KCore::new(Config::with_techniques(techniques)).run(&g);
//!     assert_eq!(r.coreness(), result.coreness());
//! }
//! ```

pub mod bz;
mod config;
mod peel;
mod result;

pub use config::{Config, HistogramKind, Offline, PeelMode, Sampling, Techniques, Validation, Vgc};
pub use kcore_buckets::BucketStrategy;
pub use peel::KCore;
pub use result::CorenessResult;
