//! k-core decomposition algorithms.
//!
//! The **k-core** of a graph is the maximal subgraph in which every
//! vertex has degree at least `k`; a vertex's **coreness** is the
//! largest `k` for which it belongs to the k-core. This crate computes
//! the coreness of every vertex with the paper's work-efficient
//! (`O(n + m)` expected) parallel peeling framework:
//!
//! * [`KCore`] — the parallel framework (Alg. 1): round `k` repeatedly
//!   peels the frontier of vertices with induced degree `k`, using
//!   atomic clamped decrements for `DecreaseKey` and a parallel hash
//!   bag for intra-round frontier collection. The per-round initial
//!   frontier comes from a pluggable [`BucketStrategy`] (single bucket,
//!   Julienne-style fixed window, HBS, or the adaptive hybrid).
//! * [`bz`] — the sequential Batagelj–Zaveršnik bucket algorithm, the
//!   `O(n + m)` baseline every parallel variant is tested against.
//!
//! The paper's remaining practical techniques — the sampling scheme for
//! contention on high-degree vertices and vertical granularity control
//! (VGC) for sparse graphs — plug into this framework and are tracked
//! in `ROADMAP.md`.
//!
//! ```
//! use kcore::{Config, KCore};
//! use kcore_graph::gen;
//!
//! // A 100x100 grid is a 2-core once the boundary peels inward.
//! let g = gen::grid2d(100, 100);
//! let result = KCore::new(Config::default()).run(&g);
//! assert_eq!(result.kmax(), 2);
//! ```

pub mod bz;
mod config;
mod peel;
mod result;

pub use config::Config;
pub use kcore_buckets::BucketStrategy;
pub use peel::KCore;
pub use result::CorenessResult;
