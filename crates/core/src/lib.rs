//! Peeling algorithms on the work-efficient parallel engine.
//!
//! This crate began as a k-core reproduction and now hosts a
//! **problem-agnostic peeling engine** with k-core as its first client.
//! The paper's framework (Alg. 1 + the Sec. 4 techniques) peels any
//! element universe by monotone integer priorities; the engine owns the
//! loop and the techniques, and problems plug in through a trait:
//!
//! * [`PeelEngine`] / [`PeelProblem`] — the generic core: round `k`
//!   repeatedly peels the frontier of elements with priority `k`, using
//!   atomic clamped decrements for `DecreaseKey` and a parallel hash
//!   bag for intra-round frontier collection. Per-round initial
//!   frontiers come from a pluggable [`BucketStrategy`] (single bucket,
//!   Julienne-style fixed window, HBS, or the adaptive hybrid).
//! * [`KCore`] — k-core decomposition (vertices by induced degree),
//!   bit-compatible with the pre-engine implementation. [`bz`] is the
//!   sequential Batagelj–Zaveršnik oracle it is tested against.
//! * [`KTruss`] — k-truss decomposition (edges by triangle support),
//!   the snapshot-rule client: a dying edge charges the surviving edges
//!   of its triangles under a consistent settle snapshot.
//!   [`sequential_trussness`] is its recount oracle.
//! * [`DensestSubgraph`] — Charikar's greedy densest subgraph as
//!   min-degree peeling with a per-round density curve; a
//!   2-approximation. [`sequential_greedy_density`] is its oracle.
//! * [`KhCore`] — the distance-generalized (k,h)-core (vertices by
//!   live h-hop ball size), the [`Incidence::Recompute`] client:
//!   priorities are recomputed over survivors through the generalized
//!   CAS clamp. [`sequential_kh_coreness`] is its recount oracle.
//! * [`ApproxDensest`] — the batched (2+ε)-approximate densest
//!   subgraph, the [`RoundPolicy::Threshold`] client: each round peels
//!   everything at or below `(1+ε/2)·`avg-degree, for `O(log₁₊ε n)`
//!   rounds total.
//!
//! The paper's Sec. 4 practical techniques plug into the engine through
//! the [`Techniques`] block of [`Config`]:
//!
//! * **Sampling** ([`Sampling`], Sec. 4.1) — high-priority elements
//!   track an approximate priority over a hashed incidence sample,
//!   shedding decrement contention on hubs; exact recounts at every
//!   peel decision keep the output oracle-identical, and an undershoot
//!   that pollutes a frontier triggers a Las-Vegas restart.
//!   Unit-incidence problems only.
//! * **Vertical granularity control** ([`Vgc`], Sec. 4.2) — workers
//!   chase local peel chains sequentially instead of bouncing every
//!   frontier hit through the hash bag, collapsing the tiny subrounds
//!   that dominate sparse inputs' burdened span. Unit-incidence
//!   problems only.
//! * **Offline peeling** ([`PeelMode::Offline`]) — the Julienne-style
//!   histogram driver: gather the frontier's decrements, histogram
//!   them, apply in bulk; no per-target atomics, three global syncs per
//!   subround. Applies to every problem;
//!   [`KCore::kcore_members`] reuses it to answer single-core queries
//!   by bulk range peeling.
//!
//! Every problem is launched through the unified [`Decomposition`]
//! builder; for standing results maintained under edge insertions and
//! deletions, see [`DynamicGraph`].
//!
//! ```
//! use kcore::{Decomposition, Techniques};
//! use kcore_graph::gen;
//!
//! // A 100x100 grid is a 2-core once the boundary peels inward.
//! let g = gen::grid2d(100, 100);
//! let result = Decomposition::kcore(&g).run();
//! assert_eq!(result.kmax(), 2);
//!
//! // Same answer with the full online techniques or the offline driver.
//! for techniques in [Techniques::all_online(), Techniques::offline()] {
//!     let r = Decomposition::kcore(&g).techniques(techniques).run();
//!     assert_eq!(r.coreness(), result.coreness());
//! }
//!
//! // The same engine peels edges (k-truss) and tracks densities.
//! let truss = Decomposition::ktruss(&g).run();
//! assert_eq!(truss.max_trussness(), 2, "grids are triangle-free");
//! let densest = Decomposition::densest(&g).run();
//! assert!(densest.density() > 1.9, "the 2-core has ~2 edges per vertex");
//! ```

pub mod bz;
mod config;
mod decomposition;
pub mod maintain;
mod peel;
mod problems;
mod result;

pub use config::{Config, HistogramKind, Offline, PeelMode, Sampling, Techniques, Validation, Vgc};
pub use decomposition::{
    ApproxDensestSpec, Decomposition, DensestSpec, KcoreSpec, KhCoreSpec, KtrussSpec,
};
pub use kcore_buckets::BucketStrategy;
pub use kcore_graph::TriangleCtx;
pub use kcore_parallel::intersect::TriKernel;
pub use maintain::{DynamicGraph, MaintainStats, Version};
pub use peel::{
    ElementState, Incidence, PeelEngine, PeelProblem, RecomputeRule, RoundAggregates, RoundPolicy,
    SettleView, SnapshotRule, ThresholdPolicy, UnitIncidence,
};
pub use problems::{
    sequential_greedy_density, sequential_kh_coreness, sequential_trussness, ApproxDensest,
    ApproxDensestResult, DensestResult, DensestSubgraph, KCore, KTruss, KhCore, KhCoreResult,
    TrussnessResult, SWEPT_EPSILONS,
};
pub use result::{CorenessResult, DecompositionResult};
