//! Subset re-peel: run the peel engine on an induced region with exact
//! boundary priorities.
//!
//! Re-peeling only the affected region requires the boundary — region
//! vertices' neighbors *outside* the region — to behave exactly as in a
//! global peel: a neighbor `u` with (unchanged) coreness `c(u)` supports
//! its region neighbor through round `c(u)` and withdraws its unit
//! within that round, clamped at `c(u)`. That is precisely how a settled
//! element behaves in the engine, so the boundary needs no new engine
//! machinery: each boundary *arc* `(v ∈ R, u ∉ R)` becomes a **ghost
//! element** whose incidence list is just `[v]` and whose initial
//! priority is `c(u)` — the ghost settles in round `c(u)` and delivers
//! the clamped decrement at exactly the right time. Ghost priorities are
//! capped at `deg(v)`: a region vertex settles no later than round
//! `deg(v)`, after which its ghosts' decrements hit a settled element
//! and are ignored anyway, and the cap keeps the subproblem's round
//! range bounded by the region's degrees.
//!
//! The result is an ordinary unit-incidence [`PeelProblem`], so every
//! bucket strategy and every Sec. 4 technique (sampling, VGC, offline
//! histogram peeling) applies to the maintenance path unchanged.

use super::region::old_coreness;
use crate::peel::engine::{Incidence, PeelEngine, PeelProblem, UnitIncidence};
use crate::Config;
use kcore_graph::{OverlayGraph, VertexId};
use kcore_parallel::RunStats;

/// Outcome of a subset re-peel.
pub(crate) struct SubsetPeel {
    /// New coreness values, parallel to the `region` slice passed in.
    pub(crate) coreness: Vec<u32>,
    /// Ghost elements created (boundary arcs of the region).
    pub(crate) ghosts: usize,
    /// Engine counters of the re-peel run.
    pub(crate) stats: RunStats,
}

/// The region re-indexed as a compact peel universe: region vertices
/// take ids `0..r` (in ascending original-id order, so re-mapped
/// adjacency stays sorted), ghosts take ids `r..`.
struct RegionProblem {
    offsets: Vec<usize>,
    edges: Vec<u32>,
    prio: Vec<u32>,
    /// Number of real region vertices; elements `>= region_len` are
    /// ghosts.
    region_len: usize,
}

impl UnitIncidence for RegionProblem {
    #[inline]
    fn incident(&self, e: u32) -> &[u32] {
        let e = e as usize;
        &self.edges[self.offsets[e]..self.offsets[e + 1]]
    }
}

impl PeelProblem for RegionProblem {
    type Output = (Vec<u32>, RunStats);

    fn name(&self) -> &'static str {
        "k-core/region"
    }

    fn num_elements(&self) -> usize {
        self.prio.len()
    }

    fn init_priorities(&self) -> Vec<u32> {
        self.prio.clone()
    }

    fn incidence(&self) -> Incidence<'_> {
        Incidence::Unit(self)
    }

    fn assemble(&self, mut rounds: Vec<u32>, stats: RunStats) -> Self::Output {
        // Ghost settle rounds are scaffolding; only the region's matter.
        rounds.truncate(self.region_len);
        (rounds, stats)
    }
}

/// Peels the subgraph induced by `region` (sorted ascending vertex ids)
/// on the logical graph `g`, with each boundary neighbor pinned to its
/// standing coreness from `coreness`. Returns the region's new coreness
/// values.
///
/// Exact whenever the boundary coreness is exact — which the affected
/// region computation guarantees for maintenance, since every vertex
/// whose coreness changed is inside the region.
pub(crate) fn peel_subset(
    g: &OverlayGraph,
    coreness: &[u32],
    region: &[VertexId],
    config: Config,
) -> SubsetPeel {
    let r = region.len();
    if r == 0 {
        return SubsetPeel { coreness: Vec::new(), ghosts: 0, stats: RunStats::default() };
    }
    let mut remap = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in region.iter().enumerate() {
        debug_assert!(i == 0 || region[i - 1] < v, "region must be sorted and duplicate-free");
        remap[v as usize] = i as u32;
    }

    let mut offsets = Vec::with_capacity(r + 1);
    offsets.push(0usize);
    let mut edges = Vec::new();
    let mut prio = Vec::with_capacity(r);
    // Ghost id `r + i` owns region vertex `ghost_owner[i]` with initial
    // priority `ghost_prio[i]`.
    let mut ghost_owner: Vec<u32> = Vec::new();
    let mut ghost_prio: Vec<u32> = Vec::new();
    for (i, &v) in region.iter().enumerate() {
        let nbrs = g.neighbors(v);
        let deg = nbrs.len() as u32;
        // Internal neighbors first: `region` ascending makes the remap
        // monotone, so these stay strictly increasing.
        edges.extend(nbrs.iter().map(|&w| remap[w as usize]).filter(|&w| w != u32::MAX));
        // Then this vertex's ghosts: ids are assigned in increasing
        // order and all exceed the internal range `0..r`.
        for &w in nbrs {
            if remap[w as usize] == u32::MAX {
                edges.push((r + ghost_owner.len()) as u32);
                ghost_owner.push(i as u32);
                ghost_prio.push(old_coreness(coreness, w).min(deg));
            }
        }
        offsets.push(edges.len());
        prio.push(deg);
    }
    let ghosts = ghost_owner.len();
    for owner in ghost_owner {
        edges.push(owner);
        offsets.push(edges.len());
    }
    prio.extend(ghost_prio);

    let problem = RegionProblem { offsets, edges, prio, region_len: r };
    let (coreness, stats) = PeelEngine::new(&problem, config).run();
    SubsetPeel { coreness, ghosts, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::bz_coreness;
    use kcore_graph::{gen, GraphBuilder};

    /// Full-graph subset (no ghosts) must reproduce plain k-core.
    #[test]
    fn whole_graph_subset_matches_bz() {
        let g = gen::barabasi_albert(300, 3, 7);
        let want = bz_coreness(&g);
        let region: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let overlay = OverlayGraph::new(g);
        let sub = peel_subset(&overlay, &[], &region, Config::default());
        assert_eq!(sub.ghosts, 0);
        assert_eq!(sub.coreness, want);
    }

    /// Re-peel one triangle of a barbell with the rest as boundary.
    #[test]
    fn boundary_ghosts_pin_external_support() {
        // Triangle {0,1,2} + pendant chain 2-3-4; coreness [2,2,2,1,1].
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).build();
        let coreness = bz_coreness(&g);
        let overlay = OverlayGraph::new(g);
        // Region {0, 1, 2}: vertex 2 gets one ghost for neighbor 3.
        let sub = peel_subset(&overlay, &coreness, &[0, 1, 2], Config::default());
        assert_eq!(sub.ghosts, 1);
        assert_eq!(sub.coreness, &[2, 2, 2]);
        // Region {3}: two ghosts (2 and 4), both at coreness >= 1.
        let sub = peel_subset(&overlay, &coreness, &[3], Config::default());
        assert_eq!(sub.ghosts, 2);
        assert_eq!(sub.coreness, &[1]);
    }

    /// Every region of every size must agree with global coreness when
    /// the boundary is exact — sweep contiguous windows of a random
    /// graph under all bucket strategies.
    #[test]
    fn arbitrary_regions_with_exact_boundaries_match_global() {
        let g = gen::erdos_renyi(60, 150, 5);
        let want = bz_coreness(&g);
        let overlay = OverlayGraph::new(g);
        for start in [0usize, 13, 37] {
            for len in [1usize, 7, 25, 60] {
                let region: Vec<u32> = (start..(start + len).min(60)).map(|v| v as u32).collect();
                for strategy in [
                    kcore_buckets::BucketStrategy::Single,
                    kcore_buckets::BucketStrategy::Fixed(16),
                    kcore_buckets::BucketStrategy::Hierarchical,
                    kcore_buckets::BucketStrategy::Adaptive,
                ] {
                    let config = Config { bucket_strategy: strategy, ..Config::default() };
                    let sub = peel_subset(&overlay, &want, &region, config);
                    let got: Vec<u32> = sub.coreness;
                    let expect: Vec<u32> = region.iter().map(|&v| want[v as usize]).collect();
                    assert_eq!(got, expect, "window {start}+{len} under {strategy}");
                }
            }
        }
    }
}
