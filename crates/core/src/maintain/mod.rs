//! Batch-dynamic coreness maintenance.
//!
//! The engine answers one-shot decompositions; this module keeps a
//! coreness decomposition *standing* under edge insert/delete batches,
//! re-peeling only what a batch can actually change:
//!
//! 1. [`DynamicGraph`] owns the logical graph as a
//!    [`kcore_graph::OverlayGraph`] — an immutable CSR base plus a
//!    mergeable edge-delta overlay that the engine peels directly
//!    (no CSR rebuild per batch), compacted through the parallel
//!    builder once the overlay outgrows its threshold.
//! 2. [`DynamicGraph::apply_batch`] applies the changes, computes the
//!    **affected region** — the changed-edge endpoints expanded by BFS
//!    through vertices whose standing coreness lies in the batch's
//!    confinement range (see [`region`]'s module docs for the theorem)
//!    — and re-peels just that induced subgraph on the work-stealing
//!    pool, with boundary neighbors pinned to their standing coreness
//!    by ghost elements (see [`repeel`]).
//! 3. The re-peeled values are spliced into a standing versioned
//!    [`CorenessResult`] (copy-on-write, so readers holding
//!    [`CorenessResult::shared`] snapshots are never torn), and
//!    [`MaintainStats`] reports what the batch cost.
//!
//! Oversized regions (more than half the graph) fall back to a full
//! re-peel of the logical graph — never slower than a fresh
//! decomposition by more than the region computation itself.
//!
//! ```
//! use kcore::maintain::DynamicGraph;
//! use kcore::Config;
//! use kcore_graph::gen;
//!
//! let mut dynamic = DynamicGraph::new(gen::grid2d(30, 30), Config::default());
//! assert_eq!(dynamic.result().kmax(), 2);
//!
//! // Deleting an edge re-peels only the affected region.
//! let v1 = dynamic.apply_batch(&[], &[(0, 1)]);
//! assert_eq!(v1.get(), 1);
//! assert!(dynamic.last_stats().region <= 900);
//!
//! // Re-inserting restores the original decomposition.
//! dynamic.apply_batch(&[(0, 1)], &[]);
//! assert_eq!(dynamic.result().kmax(), 2);
//! assert_eq!(dynamic.version().get(), 2);
//! ```

mod region;
mod repeel;

use crate::peel::engine::{Incidence, PeelEngine, PeelProblem};
use crate::{Config, CorenessResult};
use kcore_graph::{CsrGraph, OverlayGraph, VertexId};
use kcore_obs::span;
use kcore_parallel::RunStats;

/// Monotone version of a maintained decomposition: 0 right after
/// construction, bumped once per batch that changed anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(u64);

impl Version {
    /// The raw counter.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What the last [`DynamicGraph::apply_batch`] call did and cost.
/// Extends the engine's [`RunStats`] plumbing with the
/// maintenance-specific quantities.
#[derive(Debug, Clone, Default)]
pub struct MaintainStats {
    /// Version the batch produced.
    pub version: u64,
    /// Inserts actually applied (duplicates and self-loops don't count).
    pub inserted: usize,
    /// Deletes actually applied (absent edges don't count).
    pub deleted: usize,
    /// Distinct endpoints of applied changes (BFS seeds).
    pub seeds: usize,
    /// Vertices examined before elimination pruned them down to the
    /// region: range-BFS candidates on the gain side, lazily-touched
    /// support counts on the loss side — whichever pool was larger.
    pub candidates: usize,
    /// Affected-region size (vertices re-peeled). Bounded by the vertex
    /// count; typically a vanishing fraction of it for small batches.
    pub region: usize,
    /// Inclusive old-coreness range the confinement theorem restricted
    /// the region to.
    pub confinement: (u32, u32),
    /// Ghost elements pinning the region's boundary (0 on the full
    /// recompute path).
    pub ghosts: usize,
    /// Whether the region was large enough that the batch fell back to
    /// a full re-peel of the logical graph.
    pub full_recompute: bool,
    /// Whether the batch triggered overlay compaction.
    pub compacted: bool,
    /// Engine counters of the re-peel run (region or full).
    pub repeel: RunStats,
    /// Time spent computing the affected region.
    pub region_nanos: u64,
    /// Time spent re-peeling.
    pub repeel_nanos: u64,
    /// Time spent splicing results into the standing [`CorenessResult`].
    pub splice_nanos: u64,
}

impl MaintainStats {
    /// Publish the batch's headline quantities as `maintain.*` gauges in
    /// the `kcore-obs` metrics registry (no-op below
    /// `KCORE_TRACE=counters`). The phase timings land next to the
    /// `maintain.region`/`repeel`/`splice` spans they mirror.
    pub fn publish_metrics(&self) {
        kcore_obs::MetricsRegistry::publish(
            "maintain",
            &[
                ("version", self.version),
                ("inserted", self.inserted as u64),
                ("deleted", self.deleted as u64),
                ("seeds", self.seeds as u64),
                ("candidates", self.candidates as u64),
                ("region", self.region as u64),
                ("ghosts", self.ghosts as u64),
                ("full_recompute", self.full_recompute as u64),
                ("compacted", self.compacted as u64),
                ("region_nanos", self.region_nanos),
                ("repeel_nanos", self.repeel_nanos),
                ("splice_nanos", self.splice_nanos),
            ],
        );
    }
}

/// Full k-core decomposition of the overlay's logical graph — the
/// construction-time and fallback path. An ordinary unit-incidence
/// problem: the overlay serves merged adjacency slices directly.
struct LogicalKCore<'g> {
    g: &'g OverlayGraph,
}

impl PeelProblem for LogicalKCore<'_> {
    type Output = (Vec<u32>, RunStats);

    fn name(&self) -> &'static str {
        "k-core/logical"
    }

    fn num_elements(&self) -> usize {
        self.g.num_vertices()
    }

    fn init_priorities(&self) -> Vec<u32> {
        self.g.degrees()
    }

    fn incidence(&self) -> Incidence<'_> {
        Incidence::Unit(self.g)
    }

    fn assemble(&self, rounds: Vec<u32>, stats: RunStats) -> Self::Output {
        (rounds, stats)
    }
}

/// A graph under edge-batch mutation with its coreness decomposition
/// maintained incrementally. See the [module docs](self) for the
/// lifecycle and the algorithm.
#[derive(Debug)]
pub struct DynamicGraph {
    graph: OverlayGraph,
    config: Config,
    result: CorenessResult,
    last: MaintainStats,
    compaction_fraction: f64,
}

impl DynamicGraph {
    /// Default overlay-footprint fraction beyond which a batch compacts
    /// the overlay back into a fresh CSR base.
    pub const DEFAULT_COMPACTION_FRACTION: f64 = 0.5;

    /// Wraps `base` and computes its initial decomposition (version 0)
    /// with the given configuration, after applying the
    /// `KCORE_TECHNIQUES` environment override (see
    /// [`Config::apply_env_overrides`]).
    pub fn new(base: CsrGraph, config: Config) -> Self {
        Self::build(base, config.apply_env_overrides())
    }

    /// Like [`DynamicGraph::new`] but takes `config` exactly as given,
    /// bypassing the environment override.
    pub fn with_exact_config(base: CsrGraph, config: Config) -> Self {
        Self::build(base, config)
    }

    fn build(base: CsrGraph, config: Config) -> Self {
        let graph = OverlayGraph::new(base);
        let (coreness, stats) = PeelEngine::new(&LogicalKCore { g: &graph }, config).run();
        let result = CorenessResult::new(coreness, stats);
        Self {
            graph,
            config,
            result,
            last: MaintainStats::default(),
            compaction_fraction: Self::DEFAULT_COMPACTION_FRACTION,
        }
    }

    /// The logical graph being maintained.
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// The standing decomposition. Its [`CorenessResult::version`]
    /// matches [`DynamicGraph::version`]; take
    /// [`CorenessResult::shared`] for a snapshot that survives later
    /// batches.
    pub fn result(&self) -> &CorenessResult {
        &self.result
    }

    /// Coreness of every vertex at the current version.
    pub fn coreness(&self) -> &[u32] {
        self.result.coreness()
    }

    /// Current version: one bump per batch that applied any change.
    pub fn version(&self) -> Version {
        Version(self.result.version())
    }

    /// Statistics of the most recent [`DynamicGraph::apply_batch`].
    pub fn last_stats(&self) -> &MaintainStats {
        &self.last
    }

    /// The configuration every (re-)peel runs with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Renders the current logical graph as a standalone [`CsrGraph`]
    /// (for oracles, persistence, or handing off to one-shot
    /// decompositions).
    pub fn snapshot(&self) -> CsrGraph {
        self.graph.to_csr()
    }

    /// Overrides the compaction threshold: a batch ending with
    /// [`OverlayGraph::dirty_fraction`] above `fraction` rebuilds the
    /// base CSR. `f64::INFINITY` disables compaction.
    pub fn set_compaction_fraction(&mut self, fraction: f64) {
        assert!(fraction >= 0.0, "compaction fraction must be non-negative");
        self.compaction_fraction = fraction;
    }

    /// Applies a batch of edge changes — deletes first, then inserts —
    /// and brings the standing coreness up to date by re-peeling the
    /// affected region. Inserts may name vertices beyond the current
    /// universe; the universe grows to fit.
    ///
    /// Changes that don't alter the logical graph (inserting a present
    /// edge or a self-loop, deleting an absent edge) are skipped; a
    /// batch in which *nothing* applied leaves the version unchanged.
    ///
    /// Returns the version the graph is now at.
    pub fn apply_batch(
        &mut self,
        inserts: &[(VertexId, VertexId)],
        deletes: &[(VertexId, VertexId)],
    ) -> Version {
        let mut stats = MaintainStats::default();
        let mut changed: Vec<(VertexId, VertexId)> =
            Vec::with_capacity(inserts.len() + deletes.len());
        for &(u, v) in deletes {
            if self.graph.delete_edge(u, v) {
                changed.push((u, v));
                stats.deleted += 1;
            }
        }
        for &(u, v) in inserts {
            if self.graph.insert_edge(u, v) {
                changed.push((u, v));
                stats.inserted += 1;
            }
        }
        if changed.is_empty() {
            stats.version = self.result.version();
            self.last = stats;
            return self.version();
        }
        let n = self.graph.num_vertices();
        let _batch = span!("maintain.apply_batch", changed.len());

        // The phase timings always run off the obs monotonic clock;
        // with tracing enabled each phase is also a visible child span.
        let (region, region_nanos) = kcore_obs::timed("maintain.region", || {
            region::affected_region(
                &self.graph,
                self.result.coreness(),
                &changed,
                stats.inserted > 0,
            )
        });
        stats.region_nanos = region_nanos;
        stats.seeds = region.seeds;
        stats.candidates = region.candidates;
        stats.region = region.vertices.len();
        stats.confinement = (region.lo, region.hi);

        // An oversized region forfeits the locality win; peel the whole
        // logical graph instead of paying for ghosts on half its arcs.
        stats.full_recompute = 2 * region.vertices.len() > n;
        let ((region_vertices, coreness), repeel_nanos) =
            kcore_obs::timed("maintain.repeel", || {
                if stats.full_recompute {
                    let (coreness, run) =
                        PeelEngine::new(&LogicalKCore { g: &self.graph }, self.config).run();
                    stats.repeel = run;
                    (None, coreness)
                } else {
                    let sub = repeel::peel_subset(
                        &self.graph,
                        self.result.coreness(),
                        &region.vertices,
                        self.config,
                    );
                    stats.ghosts = sub.ghosts;
                    stats.repeel = sub.stats;
                    (Some(region.vertices), sub.coreness)
                }
            });
        stats.repeel_nanos = repeel_nanos;

        let result = &mut self.result;
        let (version, splice_nanos) = kcore_obs::timed("maintain.splice", || {
            let version = match region_vertices {
                Some(vertices) => result.splice(n, vertices.into_iter().zip(coreness)),
                None => result.splice(n, (0u32..).zip(coreness)),
            };
            result.set_stats(stats.repeel.clone());
            version
        });
        stats.version = version;
        stats.splice_nanos = splice_nanos;

        if self.graph.dirty_fraction() > self.compaction_fraction {
            self.graph.compact();
            stats.compacted = true;
        }
        stats.publish_metrics();
        self.last = stats;
        self.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz::bz_coreness;
    use kcore_graph::{gen, GraphBuilder};

    fn assert_current(dynamic: &DynamicGraph) {
        let want = bz_coreness(&dynamic.snapshot());
        assert_eq!(dynamic.coreness(), want.as_slice(), "standing coreness must match oracle");
    }

    #[test]
    fn construction_matches_one_shot_decomposition() {
        let g = gen::barabasi_albert(500, 3, 9);
        let dynamic = DynamicGraph::new(g.clone(), Config::default());
        assert_eq!(dynamic.coreness(), bz_coreness(&g).as_slice());
        assert_eq!(dynamic.version().get(), 0);
        assert!(dynamic.result().stats().rounds > 0);
    }

    #[test]
    fn inserts_deletes_and_growth_stay_exact() {
        let g = gen::grid2d(12, 12);
        let mut dynamic = DynamicGraph::new(g, Config::default());
        dynamic.apply_batch(&[(0, 13), (5, 40)], &[]);
        assert_current(&dynamic);
        dynamic.apply_batch(&[], &[(0, 1), (12, 13)]);
        assert_current(&dynamic);
        // Growth: vertex 200 is beyond the 144-vertex grid.
        let v = dynamic.apply_batch(&[(3, 200)], &[]);
        assert_eq!(v.get(), 3);
        assert_eq!(dynamic.graph().num_vertices(), 201);
        assert_current(&dynamic);
    }

    #[test]
    fn mixed_batch_deletes_before_inserts() {
        // The batch both deletes {0,1} and inserts {0,2}: deletes apply
        // first, so inserting an edge the same batch deletes would
        // re-add it.
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let mut dynamic = DynamicGraph::new(g, Config::default());
        dynamic.apply_batch(&[(0, 2), (0, 1)], &[(0, 1)]);
        assert!(dynamic.graph().has_edge(0, 1), "deleted then re-inserted");
        assert!(dynamic.graph().has_edge(0, 2));
        assert_current(&dynamic);
        assert_eq!(dynamic.last_stats().deleted, 1);
        assert_eq!(dynamic.last_stats().inserted, 2);
    }

    #[test]
    fn noop_batches_keep_the_version() {
        let g = gen::cycle(10);
        let mut dynamic = DynamicGraph::new(g, Config::default());
        let v = dynamic.apply_batch(&[(0, 1), (4, 4)], &[(2, 7)]);
        assert_eq!(v.get(), 0, "present insert + self-loop + absent delete all skip");
        assert_eq!(dynamic.last_stats().inserted, 0);
        assert_eq!(dynamic.last_stats().deleted, 0);
        assert_eq!(dynamic.last_stats().region, 0);
    }

    #[test]
    fn region_never_exceeds_the_graph_and_shrinks_for_far_edges() {
        // 50 four-cliques (coreness 3) strung on a chain of coreness-1
        // connector vertices: clique i is vertices 5i..5i+3, connector
        // 5i+4 links 5i+3 to 5(i+1).
        let mut b = GraphBuilder::new(250);
        for i in 0..50u32 {
            let base = 5 * i;
            for u in 0..4u32 {
                for v in (u + 1)..4 {
                    b.push_edge(base + u, base + v);
                }
            }
            b.push_edge(base + 3, base + 4);
            if i < 49 {
                b.push_edge(base + 4, base + 5);
            }
        }
        let mut dynamic = DynamicGraph::new(b.build(), Config::default());
        let n = dynamic.graph().num_vertices();

        // A single edge change deep inside one clique: the connectors'
        // coreness 1 is outside the confinement range [3, 3], so the
        // region is that one clique — not the other 49.
        dynamic.apply_batch(&[], &[(100, 101)]);
        let far = dynamic.last_stats().region;
        assert_eq!(dynamic.last_stats().confinement, (3, 3));
        assert!(far <= 4, "one clique's worth of vertices, got {far}");
        assert!(!dynamic.last_stats().full_recompute);
        assert_current(&dynamic);

        // A scattered batch widens the range but still never exceeds n.
        dynamic.apply_batch(&[(100, 101), (0, 249)], &[(10, 11)]);
        assert!(dynamic.last_stats().region <= n);
        assert_current(&dynamic);
    }

    #[test]
    fn oversized_regions_fall_back_to_full_recompute() {
        // Breaking a cycle drops every vertex from coreness 2 to 1: the
        // loss cascade keeps the whole graph in the region, which
        // triggers the full-recompute fallback.
        let mut dynamic = DynamicGraph::new(gen::cycle(50), Config::default());
        dynamic.apply_batch(&[], &[(0, 1)]);
        assert_eq!(dynamic.last_stats().region, 50);
        assert!(dynamic.last_stats().full_recompute);
        assert_eq!(dynamic.last_stats().ghosts, 0);
        assert_current(&dynamic);
    }

    #[test]
    fn eliminated_regions_skip_the_repeel() {
        // Splitting a path leaves every coreness at 1: a delete-only
        // batch skips the gain side entirely, and the loss cascade
        // certifies after examining just the two endpoints that nothing
        // moves — so no re-peel runs at all.
        let mut b = GraphBuilder::new(50);
        for v in 0..49u32 {
            b.push_edge(v, v + 1);
        }
        let mut dynamic = DynamicGraph::new(b.build(), Config::default());
        dynamic.apply_batch(&[], &[(10, 11)]);
        let s = dynamic.last_stats();
        assert_eq!(s.candidates, 2, "only the endpoints were examined");
        assert_eq!(s.region, 0, "elimination proved no coreness moves");
        assert!(!s.full_recompute);
        assert_eq!(s.version, 1, "the graph still changed");
        assert_current(&dynamic);
    }

    #[test]
    fn compaction_triggers_and_preserves_results() {
        let mut dynamic = DynamicGraph::new(gen::grid2d(8, 8), Config::default());
        dynamic.set_compaction_fraction(0.01);
        dynamic.apply_batch(&[(0, 63), (5, 17)], &[(0, 1)]);
        assert!(dynamic.last_stats().compacted);
        assert_eq!(dynamic.graph().overlay_arcs(), 0);
        assert_current(&dynamic);
        // And the graph keeps maintaining correctly after compaction.
        dynamic.apply_batch(&[(0, 1)], &[(5, 17)]);
        assert_current(&dynamic);
    }

    #[test]
    fn shared_snapshots_survive_later_batches() {
        let mut dynamic = DynamicGraph::new(gen::grid2d(10, 10), Config::default());
        let before = dynamic.result().shared();
        let kmax_before = dynamic.result().kmax();
        // Row 0 of the grid is vertices 0..10; peel its edges off one
        // batch at a time.
        for v in 0..9 {
            dynamic.apply_batch(&[], &[(v, v + 1)]);
        }
        assert_eq!(before.len(), 100, "snapshot pinned at version 0");
        assert_eq!(before.iter().copied().max(), Some(kmax_before));
        assert_eq!(dynamic.version().get(), 9);
    }

    #[test]
    fn maintain_stats_are_populated() {
        // Two 4-cliques joined by a path; deleting an edge inside one
        // clique re-peels exactly that clique, with ghosts pinning the
        // path boundary.
        let mut b = GraphBuilder::new(10);
        for base in [0u32, 6] {
            for u in 0..4u32 {
                for v in (u + 1)..4 {
                    b.push_edge(base + u, base + v);
                }
            }
        }
        b.push_edge(3, 4);
        b.push_edge(4, 5);
        b.push_edge(5, 6);
        let mut dynamic = DynamicGraph::new(b.build(), Config::default());
        dynamic.apply_batch(&[], &[(0, 1)]);
        let s = dynamic.last_stats();
        assert_eq!(s.version, 1);
        assert_eq!(s.deleted, 1);
        assert_eq!(s.seeds, 2);
        assert!(s.candidates >= s.region);
        assert_eq!(s.region, 4, "the touched clique re-peels");
        assert!(!s.full_recompute);
        assert!(s.ghosts > 0, "an interior region has boundary arcs");
        assert!(s.repeel.rounds > 0, "RunStats must be threaded through");
        assert_current(&dynamic);
    }
}
