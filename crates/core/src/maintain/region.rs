//! Affected-region computation: the confinement theorem for edge
//! batches, sharpened by traversal-style candidate elimination.
//!
//! After a batch of `b` applied edge changes, only a confined region of
//! the graph can change coreness. The classical single-edge theorem
//! (insert `{u, v}`: only vertices with coreness `min(c(u), c(v))`,
//! connected to the cheaper endpoint through same-coreness vertices, can
//! move — and by at most one) generalizes to batches:
//!
//! * **Magnitude.** Applying one edge changes any coreness by at most 1,
//!   so `b` edges change any coreness by at most `b`.
//! * **Level range.** Fix a level `k` and look at the vertices that
//!   *gained* the `k`-core: `H = K_k(G') ∖ K_k(G)`. If some connected
//!   component `C` of `H` (under updated-graph edges) contained no
//!   endpoint of a changed edge, every vertex of `C` would have had its
//!   `≥ k` supporting neighbors (all inside `C ∪ K_k(G)`) already in the
//!   old graph — making `C ∪ K_k(G)` a subgraph of min-degree `k` in the
//!   old graph, contradicting `C ∩ K_k(G) = ∅`. So every component of
//!   gained vertices touches a changed-edge endpoint `e`; since `e`
//!   itself gained the level, `k ≤ c_old(e) + b ≤ c_hi + b`, and every
//!   vertex `w` on the connecting path satisfies
//!   `c_old(w) ∈ [k − b, k − 1] ⊆ [c_lo − (b−1), c_hi + (b−1)]`, where
//!   `[c_lo, c_hi]` spans the old corenesses of the changed-edge
//!   endpoints.
//!
//! The BFS this licenses (from all endpoints of all applied changes,
//! expanding into vertices with old coreness in range) is sound but
//! loose: on graphs with near-uniform coreness — scale-free graphs are
//! the canonical case — the in-range set is the whole graph, and the
//! "region" degenerates into a full recompute. Two standard elimination
//! arguments prune the candidates down to (a superset of) the vertices
//! that can actually move, each side running only when the batch can
//! move coreness in its direction:
//!
//! * **Gain elimination** (runs only when the batch inserted edges —
//!   deletions never raise coreness). A vertex `w` that gains a level
//!   ends at some `k ≥ c_old(w) + 1`, so it needs at least
//!   `c_old(w) + 1` updated-graph neighbors with new coreness `≥ k`.
//!   Such a neighbor `y` either already had `c_old(y) > c_old(w)`, or is
//!   itself a gainer reaching level `≥ c_old(w) + 1` — hence has
//!   `c_old(y) ∈ [c_old(w) + 1 − b, c_old(w)]` (magnitude bound) and
//!   updated degree above `c_old(w)` (nobody reaches a level past
//!   their degree). Count each BFS
//!   candidate's qualified neighbors under exactly that test (one fused
//!   sweep with the BFS expansion), seed the gain set `G` with the
//!   degree-eligible candidates, and repeatedly discard `w ∈ G` whose
//!   count drops to `≤ c_old(w)`, withdrawing `w` from its in-window
//!   neighbors' counts. True gainers survive: were the first true
//!   gainer ever discarded, its `≥ c_old(w) + 1` supporters would all
//!   still be qualified at that moment, a contradiction. (Counting an
//!   unreachable degree-eligible neighbor as qualified forever is a
//!   sound overcount — it can only keep extra vertices in `G`.)
//! * **Loss cascade** (needs no BFS at all). A vertex `w` keeps
//!   coreness `c_old(w)` if it retains `c_old(w)` updated-graph
//!   neighbors that themselves keep coreness `≥ c_old(w)`. A neighbor
//!   `y` with `c_old(y) ≥ c_old(w) + b` supports `w` *unconditionally*
//!   — the magnitude bound caps its drop at `b` — so only losses inside
//!   the window `c_old(y) − c_old(w) < b` can hurt `w` (for `b = 1`
//!   this is the classical same-level rule). Support counts are
//!   computed lazily, starting from the changed endpoints: deleted
//!   edges are already off the adjacency, so seeds start deficient
//!   exactly when a deletion cost them support. A vertex whose support
//!   falls below `c_old(w)` joins the loss set `L` and withdraws its
//!   unit from every in-window neighbor it was supporting, touching
//!   that neighbor (and paying its `O(deg)` count) only then.
//!   Untouched vertices provably keep their old support — every
//!   deleted edge ends in a seed, and every `L`-join touches all
//!   in-window neighbors it supported. Soundness of the fixpoint: for
//!   every `k`, take `U = {w ∉ L : c_old(w) ≥ k} ∪ K_k(G')`. Each
//!   non-`L` member's counted supporters are either non-`L` with
//!   `c_old ≥ c_old(w) ≥ k` (in `U`) or out-of-window vertices whose
//!   new coreness is at least `c_old(w) ≥ k` by the magnitude bound
//!   (in `K_k(G')`), so `G'[U]` has min degree `≥ k` and no non-`L`
//!   vertex lost level `k`.
//!
//! Both prunes are conservative in the right direction (extra members
//! cost re-peel work, never correctness: the re-peel recomputes exact
//! values for whatever region it is given, provided the region covers
//! every vertex that moves). The loss side costs `O(Σ deg)` over the
//! vertices it actually touches — for a small deletion batch that
//! changes nothing, a handful of adjacency scans. The gain side costs
//! one fused BFS sweep plus the elimination cascade over the in-range
//! candidates. The final region is `G ∪ L` — typically empty or a
//! handful of vertices for a small batch, even when the range BFS
//! flooded the graph.

use kcore_graph::{OverlayGraph, VertexId};

/// The confined region a batch of edge changes can affect.
pub(crate) struct Region {
    /// Affected vertices, sorted ascending by original id. Every vertex
    /// whose coreness differs between the old and updated graph is in
    /// here (the converse need not hold).
    pub(crate) vertices: Vec<VertexId>,
    /// Number of BFS seeds (distinct endpoints of applied changes).
    pub(crate) seeds: usize,
    /// Vertices examined before elimination: range-BFS candidates on
    /// the gain side, lazily-touched support counts on the loss side —
    /// whichever pool was larger.
    pub(crate) candidates: usize,
    /// Inclusive old-coreness range the gain BFS expands through.
    pub(crate) lo: u32,
    /// See [`Region::lo`].
    pub(crate) hi: u32,
}

/// Old coreness of `v`, treating vertices beyond the recorded universe
/// (grown by this batch) as coreness 0 — correct, since they had no
/// edges before the batch.
#[inline]
pub(crate) fn old_coreness(coreness: &[u32], v: VertexId) -> u32 {
    coreness.get(v as usize).copied().unwrap_or(0)
}

/// Computes the affected region on the *updated* logical graph `g`.
///
/// `coreness` is the pre-batch coreness array (possibly shorter than
/// `g.num_vertices()` when the batch grew the universe); `changed` lists
/// the applied edge changes — inserts and deletes alike, as endpoint
/// pairs. `has_inserts` tells the gain side whether it can skip (a
/// delete-only batch never raises any coreness).
pub(crate) fn affected_region(
    g: &OverlayGraph,
    coreness: &[u32],
    changed: &[(VertexId, VertexId)],
    has_inserts: bool,
) -> Region {
    debug_assert!(!changed.is_empty(), "no applied changes — nothing to confine");
    let b = changed.len() as u32;
    let slack = b - 1;
    let (mut c_lo, mut c_hi) = (u32::MAX, 0u32);
    for &(u, v) in changed {
        let (cu, cv) = (old_coreness(coreness, u), old_coreness(coreness, v));
        c_lo = c_lo.min(cu.min(cv));
        c_hi = c_hi.max(cu.max(cv));
    }
    let lo = c_lo.saturating_sub(slack);
    let hi = c_hi.saturating_add(slack);

    let n = g.num_vertices();
    let mut seeds: Vec<VertexId> = changed.iter().flat_map(|&(u, v)| [u, v]).collect();
    seeds.sort_unstable();
    seeds.dedup();

    // ---- Loss cascade: lazy support counts from the seeds outward.
    let mut in_l = vec![false; n];
    // A popped member has already withdrawn its unit everywhere, so
    // fresh counts exclude it; pending (pushed, unpopped) members still
    // count and withdraw on their own pop — each unit exactly once.
    let mut popped = vec![false; n];
    let mut computed = vec![false; n];
    let mut support = vec![0u32; n];
    let mut touched = 0usize;
    // A popped neighbor withdraws support only from inside the window:
    // above it, the magnitude bound keeps it a supporter regardless.
    let fresh_support = |v: VertexId, popped: &[bool]| {
        let cv = old_coreness(coreness, v);
        g.neighbors(v)
            .iter()
            .filter(|&&y| {
                let cy = old_coreness(coreness, y);
                cy >= cv && !(popped[y as usize] && cy - cv < b)
            })
            .count() as u32
    };
    let mut losses: Vec<VertexId> = Vec::new();
    let mut worklist: Vec<VertexId> = Vec::new();
    for &s in &seeds {
        computed[s as usize] = true;
        touched += 1;
        support[s as usize] = fresh_support(s, &popped);
        if support[s as usize] < old_coreness(coreness, s) {
            in_l[s as usize] = true;
            losses.push(s);
            worklist.push(s);
        }
    }
    while let Some(v) = worklist.pop() {
        popped[v as usize] = true;
        let cv = old_coreness(coreness, v);
        for &w in g.neighbors(v) {
            let cw = old_coreness(coreness, w);
            if in_l[w as usize] || cw > cv || cv - cw >= b {
                continue; // already lost, not supported by v, or out of
                          // the window (v's drop can't take it below cw)
            }
            if !computed[w as usize] {
                computed[w as usize] = true;
                touched += 1;
                support[w as usize] = fresh_support(w, &popped);
            } else {
                support[w as usize] -= 1;
            }
            if support[w as usize] < cw {
                in_l[w as usize] = true;
                losses.push(w);
                worklist.push(w);
            }
        }
    }

    // ---- Gain side: range BFS with fused qualified counts, then the
    // elimination cascade.
    let mut vertices = losses;
    let mut bfs_candidates = 0;
    if has_inserts {
        let in_window = |cw: u32, cy: u32| cy <= cw && cw - cy < b;
        let mut visited = vec![false; n];
        let mut in_g = vec![false; n];
        let mut qualified = vec![0u32; n];
        let mut queue: Vec<VertexId> = seeds.clone();
        for &s in &seeds {
            visited[s as usize] = true;
        }
        let mut worklist: Vec<VertexId> = Vec::new();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let cv = old_coreness(coreness, v);
            let eligible = g.degree(v) as u32 > cv;
            let mut q = 0u32;
            for &y in g.neighbors(v) {
                let cy = old_coreness(coreness, y);
                if !visited[y as usize] && (lo..=hi).contains(&cy) {
                    visited[y as usize] = true;
                    queue.push(y);
                }
                // A same-or-lower neighbor supports v at level cv + 1
                // only by gaining to cv + 1 itself, which its updated
                // degree must allow (deg > cv implies deg > cy here).
                if eligible && (cy > cv || (in_window(cv, cy) && g.degree(y) as u32 > cv)) {
                    q += 1;
                }
            }
            if eligible {
                in_g[v as usize] = true;
                qualified[v as usize] = q;
                if q <= cv {
                    worklist.push(v);
                }
            }
        }
        bfs_candidates = queue.len();
        while let Some(v) = worklist.pop() {
            if !std::mem::replace(&mut in_g[v as usize], false) {
                continue; // a second worklist entry for the same vertex
            }
            let cv = old_coreness(coreness, v);
            let dv = g.degree(v) as u32;
            for &w in g.neighbors(v) {
                let cw = old_coreness(coreness, w);
                if in_g[w as usize] && in_window(cw, cv) && dv > cw {
                    qualified[w as usize] -= 1;
                    if qualified[w as usize] <= cw {
                        worklist.push(w);
                    }
                }
            }
        }
        vertices.extend(queue.into_iter().filter(|&v| in_g[v as usize]));
    }

    vertices.sort_unstable();
    vertices.dedup();
    Region { vertices, seeds: seeds.len(), candidates: bfs_candidates.max(touched), lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::GraphBuilder;

    /// A triangle (coreness 2) with a pendant path `2-3-…-9`
    /// (coreness 1 — pendant, so the path never closes into a 2-core).
    fn lollipop() -> OverlayGraph {
        let mut b = GraphBuilder::new(10);
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            b.push_edge(u, v);
        }
        for v in 2..9 {
            b.push_edge(v, v + 1);
        }
        OverlayGraph::new(b.build())
    }

    #[test]
    fn single_insert_confines_to_one_coreness_level() {
        let mut g = lollipop();
        let coreness = crate::bz::bz_coreness(g.base());
        assert!(g.insert_edge(4, 6));
        let region = affected_region(&g, &coreness, &[(4, 6)], true);
        assert_eq!((region.lo, region.hi), (1, 1), "b = 1 leaves no slack");
        assert_eq!(region.seeds, 2);
        // The level-1 path is reachable, the level-2 triangle is not.
        assert!(region.candidates < g.num_vertices());
        // The chord closes cycle 4-5-6; vertex 3 also survives the gain
        // fixpoint (its triangle neighbor plus an in-set neighbor keep
        // it qualified) — a sound superset of the true gainers {4,5,6}.
        assert_eq!(region.vertices, vec![3, 4, 5, 6]);
    }

    #[test]
    fn batches_widen_the_range() {
        let mut g = lollipop();
        let coreness = crate::bz::bz_coreness(g.base());
        assert!(g.insert_edge(4, 6));
        assert!(g.insert_edge(5, 7));
        let region = affected_region(&g, &coreness, &[(4, 6), (5, 7)], true);
        assert_eq!((region.lo, region.hi), (0, 2), "b = 2 adds one level of slack each way");
        assert_eq!(region.seeds, 4);
        // The two chords interleave over path 4..=7; all of it can move.
        assert!([4u32, 5, 6, 7].iter().all(|v| region.vertices.contains(v)));
    }

    #[test]
    fn deleted_edge_cascades_nowhere_on_a_path() {
        let mut g = lollipop();
        let coreness = crate::bz::bz_coreness(g.base());
        // Deleting a path edge disconnects the two halves, but each
        // endpoint keeps a level-1 neighbor: nobody loses coreness, and
        // the loss cascade certifies it after touching only the seeds.
        assert!(g.delete_edge(5, 6));
        let region = affected_region(&g, &coreness, &[(5, 6)], false);
        assert_eq!(region.seeds, 2);
        assert_eq!(region.candidates, 2, "only the endpoints were examined");
        assert!(region.vertices.is_empty(), "path vertices all keep coreness 1");
    }

    #[test]
    fn deletion_that_breaks_a_core_keeps_the_losers() {
        let mut g = lollipop();
        let coreness = crate::bz::bz_coreness(g.base());
        // Deleting a triangle edge drops the whole triangle to the
        // pendant path's level.
        assert!(g.delete_edge(0, 1));
        let region = affected_region(&g, &coreness, &[(0, 1)], false);
        assert_eq!(region.vertices, vec![0, 1, 2]);
    }

    #[test]
    fn grown_vertices_count_as_coreness_zero() {
        let mut g = lollipop();
        let coreness = crate::bz::bz_coreness(g.base());
        assert!(g.insert_edge(9, 20));
        let region = affected_region(&g, &coreness, &[(9, 20)], true);
        assert_eq!((region.lo, region.hi), (0, 1), "grown endpoint counts as coreness 0");
        assert_eq!(region.vertices, vec![20], "only the grown vertex gains (coreness 1)");
    }
}
