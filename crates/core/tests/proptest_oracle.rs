//! Property-based correctness: on arbitrary graphs, every parallel
//! peeling configuration must agree vertex-for-vertex with the
//! sequential Batagelj–Zaveršnik oracle, and the coreness array must
//! satisfy the defining k-core property.

use kcore::bz::bz_coreness;
use kcore::{BucketStrategy, Config, KCore};
use kcore_graph::{gen, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn all_strategies() -> Vec<BucketStrategy> {
    vec![
        BucketStrategy::Single,
        BucketStrategy::Fixed(16),
        BucketStrategy::Hierarchical,
        BucketStrategy::Adaptive,
    ]
}

fn assert_all_strategies_match(g: &CsrGraph) {
    let want = bz_coreness(g);
    for strategy in all_strategies() {
        let got = KCore::new(Config::with_strategy(strategy)).run(g);
        prop_assert_eq!(
            got.coreness(),
            want.as_slice(),
            "strategy {} disagrees with BZ oracle",
            strategy
        );
    }
}

/// Arbitrary messy edge list: duplicates and self-loops allowed.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..48).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..192))
            .prop_map(|(n, edges)| GraphBuilder::new(n).edges(edges).build())
    })
}

proptest! {
    #[test]
    fn arbitrary_graphs_match_oracle(g in arb_graph()) {
        assert_all_strategies_match(&g);
    }

    #[test]
    fn erdos_renyi_matches_oracle(n in 2usize..120, m in 0usize..400, seed in any::<u64>()) {
        let g = gen::erdos_renyi(n, m, seed);
        assert_all_strategies_match(&g);
    }

    #[test]
    fn power_law_matches_oracle(n in 10usize..150, attach in 1usize..4, seed in any::<u64>()) {
        let g = gen::barabasi_albert(n.max(attach + 2), attach, seed);
        assert_all_strategies_match(&g);
    }

    #[test]
    fn hcns_matches_oracle(kmax in 2usize..40) {
        // Exercises deep bucket hierarchies: one vertex per coreness
        // level plus a (kmax + 1)-clique.
        assert_all_strategies_match(&gen::hcns(kmax));
    }

    #[test]
    fn coreness_satisfies_the_core_property(g in arb_graph()) {
        // Defining property: within the subgraph induced by vertices of
        // coreness >= c(v), v has degree >= c(v); and no vertex's
        // coreness exceeds its degree.
        let result = KCore::new(Config::default()).run(&g);
        let coreness = result.coreness();
        for v in g.vertices() {
            let c = coreness[v as usize];
            prop_assert!(c as usize <= g.degree(v));
            let within = g
                .neighbors(v)
                .iter()
                .filter(|&&u| coreness[u as usize] >= c)
                .count();
            prop_assert!(
                within >= c as usize,
                "vertex {} has only {} neighbors in its own {}-core",
                v,
                within,
                c
            );
        }
    }

    #[test]
    fn kmax_is_bounded_by_max_degree(g in arb_graph()) {
        let result = KCore::new(Config::default()).run(&g);
        prop_assert!(result.kmax() as usize <= g.max_degree());
        prop_assert_eq!(result.num_vertices(), g.num_vertices());
    }
}
