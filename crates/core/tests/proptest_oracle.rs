//! Property-based correctness: on arbitrary graphs, every parallel
//! peeling configuration — the full (bucket strategy × sampling × VGC ×
//! online/offline) matrix — must agree vertex-for-vertex with the
//! sequential Batagelj–Zaveršnik oracle, and the coreness array must
//! satisfy the defining k-core property.

use kcore::bz::bz_coreness;
use kcore::{BucketStrategy, Config, Decomposition, PeelMode, Sampling, Techniques, Vgc};
use kcore_graph::{gen, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn all_strategies() -> Vec<BucketStrategy> {
    vec![
        BucketStrategy::Single,
        BucketStrategy::Fixed(16),
        BucketStrategy::Hierarchical,
        BucketStrategy::Adaptive,
    ]
}

/// The techniques axes: sampling off/on × VGC off/on × online/offline.
/// Sampling uses a low threshold (test graphs are small) and the
/// deterministically-exact full validation; a short VGC chain bound
/// forces the spill path to execute too.
fn all_techniques() -> Vec<Techniques> {
    let mut out = Vec::new();
    for sampling in [None, Some(Sampling::with_threshold(4))] {
        for vgc in [None, Some(Vgc { chain_limit: 6 })] {
            for mode in [PeelMode::Online, Techniques::offline().mode] {
                out.push(Techniques { sampling, vgc, mode });
            }
        }
    }
    out
}

fn assert_all_configs_match(g: &CsrGraph) {
    let want = bz_coreness(g);
    for strategy in all_strategies() {
        for techniques in all_techniques() {
            let config = Config { bucket_strategy: strategy, techniques, ..Config::default() };
            let got = Decomposition::kcore(g).config(config).run();
            prop_assert_eq!(
                got.coreness(),
                want.as_slice(),
                "strategy {} + techniques {:?} disagrees with BZ oracle",
                strategy,
                techniques
            );
        }
    }
}

/// Arbitrary messy edge list: duplicates and self-loops allowed.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..48).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..192))
            .prop_map(|(n, edges)| GraphBuilder::new(n).edges(edges).build())
    })
}

proptest! {
    #[test]
    fn arbitrary_graphs_match_oracle(g in arb_graph()) {
        assert_all_configs_match(&g);
    }

    #[test]
    fn erdos_renyi_matches_oracle(n in 2usize..120, m in 0usize..400, seed in any::<u64>()) {
        let g = gen::erdos_renyi(n, m, seed);
        assert_all_configs_match(&g);
    }

    #[test]
    fn power_law_matches_oracle(n in 10usize..150, attach in 1usize..4, seed in any::<u64>()) {
        let g = gen::barabasi_albert(n.max(attach + 2), attach, seed);
        assert_all_configs_match(&g);
    }

    #[test]
    fn hcns_matches_oracle(kmax in 2usize..40) {
        // Exercises deep bucket hierarchies: one vertex per coreness
        // level plus a (kmax + 1)-clique.
        assert_all_configs_match(&gen::hcns(kmax));
    }

    #[test]
    fn grid_families_match_oracle(rows in 2usize..14, cols in 2usize..14, seed in any::<u64>()) {
        assert_all_configs_match(&gen::grid2d(rows, cols));
        assert_all_configs_match(&gen::road(rows, cols, 0.2, 0.1, seed));
    }

    #[test]
    fn knn_matches_oracle(n in 8usize..120, k in 1usize..5, seed in any::<u64>()) {
        assert_all_configs_match(&gen::knn(n, k, seed));
    }

    #[test]
    fn kcore_membership_agrees_with_coreness(g in arb_graph(), k in 0u32..8) {
        let coreness = Decomposition::kcore(&g).run();
        let members = Decomposition::kcore(&g).members(k);
        let want: Vec<bool> = coreness.coreness().iter().map(|&c| c >= k).collect();
        prop_assert_eq!(members, want);
    }

    #[test]
    fn coreness_satisfies_the_core_property(g in arb_graph()) {
        // Defining property: within the subgraph induced by vertices of
        // coreness >= c(v), v has degree >= c(v); and no vertex's
        // coreness exceeds its degree.
        let result = Decomposition::kcore(&g).run();
        let coreness = result.coreness();
        for v in g.vertices() {
            let c = coreness[v as usize];
            prop_assert!(c as usize <= g.degree(v));
            let within = g
                .neighbors(v)
                .iter()
                .filter(|&&u| coreness[u as usize] >= c)
                .count();
            prop_assert!(
                within >= c as usize,
                "vertex {} has only {} neighbors in its own {}-core",
                v,
                within,
                c
            );
        }
    }

    #[test]
    fn kmax_is_bounded_by_max_degree(g in arb_graph()) {
        let result = Decomposition::kcore(&g).run();
        prop_assert!(result.kmax() as usize <= g.max_degree());
        prop_assert_eq!(result.num_vertices(), g.num_vertices());
    }
}
