//! Kernel-equivalence matrix for the triangle subsystem.
//!
//! The triangle-kernel overhaul (degree-ordered orientation, hybrid
//! merge/gallop/bitset intersections, fused index+supports build)
//! promises *bit-identical* outputs under every `KCORE_TRI_KERNEL`
//! selection — the kernels differ only in how the work is ordered, not
//! in what is enumerated. This file is the referee:
//!
//! * fused supports equal the reference full-list recount
//!   ([`kcore_graph::triangles::edge_supports`]) for every kernel;
//! * trussness equals the sequential recount oracle
//!   ([`sequential_trussness`]) for every kernel, through both the
//!   internal-setup path and the supplied-[`TriangleCtx`] path
//!   ([`Decomposition::with_ctx`]);
//! * the forced `bitset` leg pushes *every* pair through the hub-map
//!   path (no degree threshold), covering both probe orientations and
//!   the rank filter;
//! * unknown `KCORE_TRI_KERNEL` tokens panic listing the valid ones,
//!   mirroring the `KCORE_TECHNIQUES` contract.
//!
//! The proptest generators mirror `proptest_problems.rs`: messy
//! arbitrary edge lists plus the power-law family where kernel choice
//! actually varies (hubs force skewed pairs).

use kcore::{sequential_trussness, Decomposition, TriKernel, TriangleCtx};
use kcore_graph::triangles::edge_supports;
use kcore_graph::{gen, CsrGraph, EdgeIndex, GraphBuilder};
use proptest::prelude::*;

const ALL_KERNELS: [TriKernel; 4] =
    [TriKernel::Auto, TriKernel::Merge, TriKernel::Gallop, TriKernel::Bitset];

/// The full matrix on one graph: per kernel, fused supports against the
/// reference recount and trussness against the sequential oracle (via
/// the supplied-context path, so the peel provably ran on this kernel's
/// enumeration).
fn assert_kernel_matrix(g: &CsrGraph) {
    let idx = EdgeIndex::build(g);
    let ref_supports = edge_supports(g, &idx);
    let want = sequential_trussness(g);
    for kernel in ALL_KERNELS {
        let ctx = TriangleCtx::build_with_kernel(g, kernel);
        assert_eq!(
            ctx.supports(),
            ref_supports.as_slice(),
            "{} supports drifted from the reference recount",
            kernel.as_str()
        );
        let r = Decomposition::ktruss(g).with_ctx(&ctx).run();
        assert_eq!(
            r.trussness(),
            want.as_slice(),
            "{} trussness drifted from the recount oracle",
            kernel.as_str()
        );
        // Same peel without the triangle cache: the per-death kernel
        // enumeration path (what a cache-cap overflow falls back to)
        // must emit the identical decrement multiset.
        let mut uncached = TriangleCtx::build_with_kernel(g, kernel);
        uncached.drop_triangle_cache();
        let r = Decomposition::ktruss(g).with_ctx(&uncached).run();
        assert_eq!(
            r.trussness(),
            want.as_slice(),
            "{} uncached trussness drifted from the recount oracle",
            kernel.as_str()
        );
    }
}

/// Arbitrary messy edge list (duplicates and self-loops allowed), kept
/// small enough for the quadratic-ish truss recount oracle.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..32).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..120))
            .prop_map(|(n, edges)| GraphBuilder::new(n).edges(edges).build())
    })
}

proptest! {
    #[test]
    fn kernels_agree_on_arbitrary_graphs(g in arb_graph()) {
        assert_kernel_matrix(&g);
    }

    #[test]
    fn kernels_agree_on_powerlaw(n in 10usize..60, seed in any::<u64>()) {
        assert_kernel_matrix(&gen::barabasi_albert(n, 3.min(n - 1), seed));
    }
}

#[test]
fn kernels_agree_on_generator_families() {
    for g in [
        gen::complete(8),
        gen::rmat(6, 6, 0.57, 0.19, 0.19, 1),
        gen::planted_core(70, 2, 14, 3),
        gen::hcns(9),
        gen::grid2d(6, 7),
        gen::mesh(7, 7),
    ] {
        assert_kernel_matrix(&g);
    }
}

#[test]
fn forced_bitset_covers_hub_probes_in_both_orientations() {
    // A wheel plus a pendant path: the hub dominates every rim pair
    // (probe the hub's map with the small side) while rim–rim edges
    // exercise the similar-size orientation; trussness on the rim is
    // driven entirely through hub-map enumeration during the peel.
    let n = 120u32;
    let rim = (1..n).map(|i| (i, if i + 1 < n { i + 1 } else { 1 }));
    let spokes = (1..n).map(|i| (0, i));
    let g = GraphBuilder::new(n as usize + 3)
        .edges(rim.chain(spokes).chain([(n, n + 1), (n + 1, n + 2)]))
        .build();
    assert_kernel_matrix(&g);
}

#[test]
fn default_run_matches_supplied_context() {
    // `Decomposition::ktruss(g).run()` builds the context internally;
    // the result must be indistinguishable from the supplied-context
    // path, edge ids included.
    let g = gen::barabasi_albert(150, 4, 2);
    let internal = Decomposition::ktruss(&g).run();
    let ctx = TriangleCtx::build(&g);
    let supplied = Decomposition::ktruss(&g).with_ctx(&ctx).run();
    assert_eq!(internal.trussness(), supplied.trussness());
    for e in 0..internal.num_edges() as u32 {
        assert_eq!(internal.edge_index().endpoints(e), supplied.edge_index().endpoints(e));
    }
}

#[test]
fn kernel_tokens_round_trip() {
    for token in TriKernel::TOKENS {
        assert_eq!(TriKernel::parse(token).as_str(), token);
    }
}

#[test]
#[should_panic(expected = "valid: auto, merge, gallop, bitset")]
fn unknown_kernel_token_panics_listing_valid_ones() {
    let _ = TriKernel::parse("quadratic");
}
