//! Span-structure tests for the `kcore-obs` integration: the span tree
//! of a fixed k-core run is pinned (names, nesting, counts — never
//! timings), and the trace's round/subround span counts are required to
//! agree exactly with the engine's own `RunStats` accounting.
//!
//! Tests here force the trace level programmatically and use
//! `exact_config`, so the `KCORE_TRACE` / `KCORE_TECHNIQUES` CI matrix
//! legs cannot change what gets recorded. Each test runs its engine in
//! a dedicated thread and scopes assertions to that thread's trace id;
//! a shared lock serializes them because the recorder is process-global.

use kcore::{Config, Decomposition};
use kcore_graph::{env_backend, gen, BackendKind};
use kcore_obs::{set_level, Level, TraceReport};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` in a fresh thread with spans enabled and returns its result
/// plus the trace id the thread recorded under.
fn traced<T: Send>(f: impl FnOnce() -> T + Send) -> (T, u32) {
    set_level(Level::Spans);
    kcore_obs::reset();
    std::thread::scope(|s| {
        s.spawn(|| {
            let out = f();
            let tid = TraceReport::current_tid().expect("the run must have recorded spans");
            (out, tid)
        })
        .join()
        .unwrap()
    })
}

#[test]
fn span_tree_of_a_fixed_minbucket_kcore_run_is_pinned() {
    let _g = serial();
    let g = gen::barabasi_albert(300, 3, 7);
    let (result, tid) = traced(|| Decomposition::kcore(&g).exact_config(Config::default()).run());
    let report = TraceReport::capture();
    set_level(Level::Off);

    let stats = result.stats();
    // The default MinBucket unit driver emits one `round` (and one
    // bucket drain) per k value, one `subround` (and one refile) per
    // frontier wave — exactly the quantities RunStats counts. The
    // `KCORE_BACKEND=compressed` CI leg re-encodes the graph inside the
    // facade, which is visible as one extra `build.encode` root — proof
    // the override actually reaches `Decomposition::run`.
    let encode = match env_backend() {
        BackendKind::Compressed => "build.encode x1\n",
        BackendKind::Plain => "",
    };
    let expected = format!(
        "{encode}\
         k-core x1\n\
         \x20 round x{rounds}\n\
         \x20   bucket.drain x{rounds}\n\
         \x20   subround x{subrounds}\n\
         \x20     frontier.refile x{subrounds}\n",
        rounds = stats.rounds,
        subrounds = stats.subrounds,
    );
    assert_eq!(report.span_tree(tid), expected);
}

#[test]
fn ba3000_span_counts_match_run_stats_exactly() {
    let _g = serial();
    // The acceptance instance: a ba-3000 k-core run under
    // KCORE_TRACE=spans must produce a Chrome trace whose round and
    // subround span counts equal RunStats.rounds / .subrounds.
    let g = gen::barabasi_albert(3000, 4, 42);
    let (result, _tid) = traced(|| Decomposition::kcore(&g).exact_config(Config::default()).run());
    let report = TraceReport::capture();
    set_level(Level::Off);

    let stats = result.stats();
    assert!(stats.rounds > 0 && stats.subrounds > 0);
    assert_eq!(report.span_count("round"), stats.rounds, "round spans vs RunStats.rounds");
    assert_eq!(
        report.span_count("subround"),
        stats.subrounds,
        "subround spans vs RunStats.subrounds"
    );
    assert_eq!(report.dropped, 0, "a ba-3000 run must fit the ring");

    // The same counts must survive the Chrome export verbatim.
    let chrome = report.chrome_trace();
    let begins =
        |name: &str| chrome.matches(&format!("{{\"name\":\"{name}\",\"ph\":\"B\"")).count();
    assert_eq!(begins("round") as u64, stats.rounds);
    assert_eq!(begins("subround") as u64, stats.subrounds);

    // publish_metrics ran inside the engine, so the gauges mirror the
    // same numbers in the unified metrics document.
    let gauge = |name: &str| {
        report.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_else(|| {
            panic!("gauge {name} missing from {:?}", report.gauges);
        })
    };
    assert_eq!(gauge("run.rounds"), stats.rounds);
    assert_eq!(gauge("run.subrounds"), stats.subrounds);
}

#[test]
fn offline_driver_shows_gather_histogram_apply_children() {
    let _g = serial();
    let g = gen::barabasi_albert(400, 3, 11);
    let config = Config::with_techniques(kcore::Techniques::offline());
    let (result, tid) = traced(|| Decomposition::kcore(&g).exact_config(config).run());
    let report = TraceReport::capture();
    set_level(Level::Off);

    let stats = result.stats();
    let tree = report.span_tree(tid);
    // Every offline subround runs the three bulk phases once, as
    // visible children of `subround`.
    for phase in ["offline.gather", "offline.histogram", "offline.apply"] {
        let line = format!("{phase} x{}", stats.subrounds);
        assert!(tree.contains(&line), "expected {line:?} in tree:\n{tree}");
    }
    assert_eq!(report.span_count("subround"), stats.subrounds);
}
