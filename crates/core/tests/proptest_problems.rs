//! Property-based correctness for the non-k-core peel problems, plus
//! the engine-refactor regression guard.
//!
//! * **k-truss** must agree edge-for-edge with a sequential
//!   triangle-recount peeler (no incremental support bookkeeping to
//!   mirror a parallel bug) across every bucket strategy and both
//!   drivers.
//! * **densest subgraph** must produce exactly the k-core density
//!   curve, and its best density must sandwich against the sequential
//!   one-vertex-at-a-time greedy: `oracle / 2 <= parallel <= oracle`.
//! * **k-core on the engine** must stay bit-identical to the
//!   Batagelj–Zaveršnik oracle (the pre-refactor implementation was
//!   verified against BZ on exactly these families, so BZ equality is
//!   the bit-compatibility witness), and the `RoundPolicy::MinBucket`
//!   runs of k-core/k-truss/densest must reproduce the PR 4 run-stats
//!   snapshot exactly (the policy refactor may not perturb the
//!   historical round structure).
//! * **(k,h)-core** must agree vertex-for-vertex with its sequential
//!   ball-recount oracle across every bucket strategy.
//! * **approx densest** must satisfy the (2+ε) sandwich
//!   `oracle/(2+ε) <= parallel <= oracle` for every swept ε.
//!
//! Runs go through `Decomposition::...config(...)` (not
//! `exact_config`), so the `KCORE_TECHNIQUES` CI matrix legs push the
//! forced techniques through every one of these assertions (the
//! threshold/recompute problems filter the inapplicable tokens at the
//! door — that path is exercised here too).

use kcore::bz::bz_coreness;
use kcore::{
    sequential_greedy_density, sequential_kh_coreness, sequential_trussness, BucketStrategy,
    Config, Decomposition, Techniques,
};
use kcore_graph::{gen, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn all_strategies() -> Vec<BucketStrategy> {
    vec![
        BucketStrategy::Single,
        BucketStrategy::Fixed(16),
        BucketStrategy::Hierarchical,
        BucketStrategy::Adaptive,
    ]
}

/// Strategy × online/offline sweep (sampling and VGC join through the
/// `KCORE_TECHNIQUES` env legs, which `new` applies on top).
fn all_configs() -> Vec<Config> {
    let mut out = Vec::new();
    for strategy in all_strategies() {
        for techniques in [Techniques::default(), Techniques::offline()] {
            out.push(Config { bucket_strategy: strategy, techniques, ..Config::default() });
        }
    }
    out
}

/// Arbitrary messy edge list: duplicates and self-loops allowed. Kept
/// small enough for the quadratic-ish truss recount oracle.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..32).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..120))
            .prop_map(|(n, edges)| GraphBuilder::new(n).edges(edges).build())
    })
}

fn assert_truss_matches_oracle(g: &CsrGraph) {
    let want = sequential_trussness(g);
    for config in all_configs() {
        let got = Decomposition::ktruss(g).config(config).run();
        assert_eq!(
            got.trussness(),
            want.as_slice(),
            "strategy {} + {:?} disagrees with the recount oracle",
            config.bucket_strategy,
            config.techniques.mode
        );
    }
}

fn assert_densest_sandwich(g: &CsrGraph) {
    let oracle = sequential_greedy_density(g);
    let coreness = bz_coreness(g);
    for config in all_configs() {
        let r = Decomposition::densest(g).config(config).run();
        let got = r.density();
        assert!(got <= oracle + 1e-9, "parallel {got} exceeds the finer greedy {oracle}");
        assert!(got * 2.0 + 1e-9 >= oracle, "parallel {got} below oracle/2 ({oracle})");
        // The curve is exactly the k-core densities.
        for (k, &d) in r.densities().iter().enumerate() {
            let nk = coreness.iter().filter(|&&c| c as usize >= k).count();
            let mk = g
                .edges()
                .filter(|&(u, v)| {
                    coreness[u as usize] as usize >= k && coreness[v as usize] as usize >= k
                })
                .count();
            let want = if nk == 0 { 0.0 } else { mk as f64 / nk as f64 };
            assert_eq!(d, want, "density of the {k}-core under {}", config.bucket_strategy);
        }
    }
}

/// The ε values the approx-densest sweep runs everywhere (tests and
/// benches alike) — one shared list, see its definition.
const EPSILONS: [f64; 3] = kcore::SWEPT_EPSILONS;

fn assert_khcore_matches_oracle(g: &CsrGraph, h: u32) {
    let want = sequential_kh_coreness(g, h);
    for strategy in all_strategies() {
        let got = Decomposition::khcore(g, h).strategy(strategy).run();
        assert_eq!(
            got.kh_coreness(),
            want.as_slice(),
            "(k,{h})-core under {strategy} disagrees with the ball-recount oracle"
        );
    }
}

fn assert_approx_densest_sandwich(g: &CsrGraph) {
    let oracle = sequential_greedy_density(g);
    for eps in EPSILONS {
        for strategy in all_strategies() {
            let r = Decomposition::approx_densest(g, eps).strategy(strategy).run();
            let got = r.density();
            assert!(
                got <= oracle + 1e-9,
                "{strategy}/eps {eps}: parallel {got} exceeds the finer greedy {oracle}"
            );
            assert!(
                got * (2.0 + eps) + 1e-9 >= oracle,
                "{strategy}/eps {eps}: parallel {got} below oracle/(2+eps) ({oracle})"
            );
        }
    }
}

proptest! {
    #[test]
    fn ktruss_matches_recount_oracle(g in arb_graph()) {
        assert_truss_matches_oracle(&g);
    }

    #[test]
    fn ktruss_on_powerlaw_matches_oracle(n in 10usize..60, seed in any::<u64>()) {
        assert_truss_matches_oracle(&gen::barabasi_albert(n, 3.min(n - 1), seed));
    }

    #[test]
    fn densest_sandwich_on_arbitrary_graphs(g in arb_graph()) {
        assert_densest_sandwich(&g);
    }

    #[test]
    fn densest_sandwich_on_powerlaw(n in 10usize..80, seed in any::<u64>()) {
        assert_densest_sandwich(&gen::barabasi_albert(n, 2.min(n - 1), seed));
    }

    #[test]
    fn khcore_matches_ball_recount_oracle(g in arb_graph(), h in 1u32..4) {
        assert_khcore_matches_oracle(&g, h);
    }

    #[test]
    fn khcore_on_powerlaw_matches_oracle(n in 10usize..40, seed in any::<u64>()) {
        assert_khcore_matches_oracle(&gen::barabasi_albert(n, 2.min(n - 1), seed), 2);
    }

    #[test]
    fn approx_densest_sandwich_on_arbitrary_graphs(g in arb_graph()) {
        assert_approx_densest_sandwich(&g);
    }

    #[test]
    fn approx_densest_sandwich_on_powerlaw(n in 10usize..80, seed in any::<u64>()) {
        assert_approx_densest_sandwich(&gen::barabasi_albert(n, 2.min(n - 1), seed));
    }

    #[test]
    fn approx_densest_rounds_shrink_with_epsilon(n in 50usize..200, seed in any::<u64>()) {
        let g = gen::barabasi_albert(n, 3.min(n - 1), seed);
        let rounds: Vec<u64> = EPSILONS
            .iter()
            .map(|&eps| Decomposition::approx_densest(&g, eps).run().num_rounds())
            .collect();
        prop_assert!(
            rounds.windows(2).all(|w| w[1] <= w[0]),
            "rounds must shrink as eps grows: {:?}", rounds
        );
        for (&eps, &r) in EPSILONS.iter().zip(&rounds) {
            let bound = (n as f64).ln() / (1.0 + eps / 2.0).ln() + 2.0;
            prop_assert!(
                (r as f64) <= bound,
                "eps {}: {} rounds exceeds the O(log n / log(1+eps/2)) bound {:.1}", eps, r, bound
            );
        }
    }

    #[test]
    fn trussness_is_bounded_by_coreness_plus_one(g in arb_graph()) {
        // Classical containment: the k-truss is a subgraph of the
        // (k-1)-core, so t(e) <= min(core(u), core(v)) + 1 for e={u,v}.
        let truss = Decomposition::ktruss(&g).run();
        let coreness = bz_coreness(&g);
        for ((u, v), t) in truss.edges() {
            let bound = coreness[u as usize].min(coreness[v as usize]) + 1;
            prop_assert!(
                t <= bound,
                "edge ({u},{v}): trussness {t} exceeds coreness bound {bound}"
            );
        }
    }
}

/// The engine-refactor regression guard: `PeelEngine`-based k-core must
/// be bit-identical to the pre-refactor coreness on the seed
/// generators, for every strategy. BZ is the witness (the pre-refactor
/// implementation matched it on these exact inputs).
#[test]
fn engine_kcore_bit_identical_on_seed_generators() {
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("path", gen::path(40)),
        ("cycle", gen::cycle(33)),
        ("star", gen::star(65)),
        ("complete", gen::complete(20)),
        ("bipartite", gen::complete_bipartite(4, 9)),
        ("grid2d", gen::grid2d(24, 17)),
        ("grid3d", gen::grid3d(6, 7, 8)),
        ("mesh", gen::mesh(15, 15)),
        ("road", gen::road(20, 20, 0.15, 0.1, 7)),
        ("erdos_renyi", gen::erdos_renyi(300, 900, 3)),
        ("barabasi_albert", gen::barabasi_albert(400, 3, 11)),
        ("rmat", gen::rmat(9, 8, 0.57, 0.19, 0.19, 5)),
        ("knn", gen::knn(250, 4, 13)),
        ("planted_core", gen::planted_core(200, 2, 40, 9)),
        ("hcns", gen::hcns(40)),
    ];
    for (label, g) in &graphs {
        let want = bz_coreness(g);
        for strategy in all_strategies() {
            let got = Decomposition::kcore(g).strategy(strategy).run();
            assert_eq!(got.coreness(), want.as_slice(), "{label} under {strategy}");
        }
    }
}

/// PR 4 run-stats snapshot for the seed generators under the default
/// (technique-free) config: per problem,
/// `[rounds, subrounds, global_syncs, work, max_frontier, burdened_span]`.
/// Captured from the pre-`RoundPolicy` engine (commit 25f2ef3), where
/// these quantities were verified deterministic across
/// `RAYON_NUM_THREADS` ∈ {1, 4}; the Single and Adaptive strategies
/// produce identical stats on every one of these inputs.
const PR4_STATS: &[(&str, [[u64; 6]; 3])] = &[
    ("path", [[2, 20, 20, 118, 2, 300020], [2, 20, 20, 118, 2, 300020], [1, 1, 2, 39, 39, 30001]]),
    ("cycle", [[3, 1, 1, 99, 33, 15001], [3, 1, 1, 99, 33, 15001], [1, 1, 2, 33, 33, 30001]]),
    ("star", [[2, 2, 2, 193, 64, 30002], [2, 2, 2, 193, 64, 30002], [1, 1, 2, 64, 64, 30001]]),
    (
        "complete",
        [[20, 1, 1, 400, 20, 15001], [20, 1, 1, 400, 20, 15001], [19, 1, 2, 190, 190, 30001]],
    ),
    ("bipartite", [[5, 2, 2, 85, 9, 30002], [5, 2, 2, 85, 9, 30002], [1, 1, 2, 36, 36, 30001]]),
    (
        "grid2d",
        [[3, 20, 20, 1958, 34, 300020], [3, 20, 20, 1958, 34, 300020], [1, 1, 2, 775, 775, 30001]],
    ),
    (
        "grid3d",
        [[4, 9, 9, 2060, 72, 135009], [4, 9, 9, 2060, 72, 135009], [1, 1, 2, 862, 862, 30001]],
    ),
    (
        "mesh",
        [
            [4, 14, 14, 1457, 32, 210014],
            [4, 14, 14, 1457, 32, 210014],
            [2, 14, 28, 1400, 80, 420014],
        ],
    ),
    (
        "road",
        [[3, 15, 15, 1740, 65, 225015], [3, 15, 15, 1740, 65, 225015], [2, 3, 6, 710, 546, 90003]],
    ),
    (
        "erdos_renyi",
        [[5, 15, 15, 2080, 49, 225015], [5, 15, 15, 2080, 49, 225015], [2, 3, 6, 898, 780, 90003]],
    ),
    (
        "barabasi_albert",
        [
            [4, 15, 15, 2788, 150, 225015],
            [4, 15, 15, 2788, 150, 225015],
            [3, 7, 14, 1446, 820, 210007],
        ],
    ),
    (
        "rmat",
        [
            [21, 47, 47, 6140, 87, 705047],
            [21, 47, 47, 6140, 87, 705047],
            [13, 74, 148, 17803, 268, 2220074],
        ],
    ),
    (
        "knn",
        [[5, 4, 4, 1478, 107, 60004], [5, 4, 4, 1478, 107, 60004], [4, 9, 18, 996, 171, 270009]],
    ),
    (
        "planted_core",
        [
            [40, 16, 16, 2534, 83, 240016],
            [40, 16, 16, 2534, 83, 240016],
            [39, 9, 18, 1353, 780, 270009],
        ],
    ),
    (
        "hcns",
        [
            [41, 40, 40, 3280, 41, 600040],
            [41, 40, 40, 3280, 41, 600040],
            [40, 40, 80, 11480, 820, 1200040],
        ],
    ),
];

fn seed_graph(label: &str) -> CsrGraph {
    match label {
        "path" => gen::path(40),
        "cycle" => gen::cycle(33),
        "star" => gen::star(65),
        "complete" => gen::complete(20),
        "bipartite" => gen::complete_bipartite(4, 9),
        "grid2d" => gen::grid2d(24, 17),
        "grid3d" => gen::grid3d(6, 7, 8),
        "mesh" => gen::mesh(15, 15),
        "road" => gen::road(20, 20, 0.15, 0.1, 7),
        "erdos_renyi" => gen::erdos_renyi(300, 900, 3),
        "barabasi_albert" => gen::barabasi_albert(400, 3, 11),
        "rmat" => gen::rmat(9, 8, 0.57, 0.19, 0.19, 5),
        "knn" => gen::knn(250, 4, 13),
        "planted_core" => gen::planted_core(200, 2, 40, 9),
        "hcns" => gen::hcns(40),
        other => panic!("unknown seed generator {other}"),
    }
}

/// The stats half of the bit-identity guard: under
/// `RoundPolicy::MinBucket` (every problem's default), the refactored
/// engine must reproduce the PR 4 round structure *exactly* — rounds,
/// subrounds, syncs, work, frontier peaks, and burdened span — for
/// k-core, densest-subgraph, and k-truss on the seed generators.
/// `exact_config` bypasses the env override on purpose: the snapshot
/// describes the technique-free baseline.
#[test]
fn minbucket_stats_match_the_pr4_snapshot() {
    for strategy in [BucketStrategy::Single, BucketStrategy::Adaptive] {
        for (label, want) in PR4_STATS {
            let g = seed_graph(label);
            let config = Config { bucket_strategy: strategy, ..Config::default() };
            let kc = Decomposition::kcore(&g).exact_config(config).run();
            let de = Decomposition::densest(&g).exact_config(config).run();
            let kt = Decomposition::ktruss(&g).exact_config(config).run();
            for (name, stats, snap) in [
                ("k-core", kc.stats(), &want[0]),
                ("densest", de.stats(), &want[1]),
                ("k-truss", kt.stats(), &want[2]),
            ] {
                let got = [
                    stats.rounds,
                    stats.subrounds,
                    stats.global_syncs,
                    stats.work,
                    stats.max_frontier as u64,
                    stats.burdened_span,
                ];
                assert_eq!(
                    &got, snap,
                    "{label}/{name} under {strategy}: stats drifted from the PR 4 snapshot"
                );
            }
        }
    }
}

/// The three problems agree on their shared structure: the densest
/// run's coreness equals k-core's, and trussness respects it.
#[test]
fn problems_are_mutually_consistent() {
    let g = gen::planted_core(200, 2, 30, 17);
    let core = Decomposition::kcore(&g).run();
    let densest = Decomposition::densest(&g).run();
    assert_eq!(core.coreness(), densest.coreness());
    let truss = Decomposition::ktruss(&g).run();
    assert_eq!(truss.num_edges(), g.num_edges());
    assert!(truss.max_trussness() <= core.kmax() + 1);
}
