//! Property-based correctness for the non-k-core peel problems, plus
//! the engine-refactor regression guard.
//!
//! * **k-truss** must agree edge-for-edge with a sequential
//!   triangle-recount peeler (no incremental support bookkeeping to
//!   mirror a parallel bug) across every bucket strategy and both
//!   drivers.
//! * **densest subgraph** must produce exactly the k-core density
//!   curve, and its best density must sandwich against the sequential
//!   one-vertex-at-a-time greedy: `oracle / 2 <= parallel <= oracle`.
//! * **k-core on the engine** must stay bit-identical to the
//!   Batagelj–Zaveršnik oracle (the pre-refactor implementation was
//!   verified against BZ on exactly these families, so BZ equality is
//!   the bit-compatibility witness).
//!
//! Facades are constructed with `new` (not `with_exact_config`), so the
//! `KCORE_TECHNIQUES` CI matrix legs push the forced techniques through
//! every one of these assertions.

use kcore::bz::bz_coreness;
use kcore::{
    sequential_greedy_density, sequential_trussness, BucketStrategy, Config, DensestSubgraph,
    KCore, KTruss, Techniques,
};
use kcore_graph::{gen, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn all_strategies() -> Vec<BucketStrategy> {
    vec![
        BucketStrategy::Single,
        BucketStrategy::Fixed(16),
        BucketStrategy::Hierarchical,
        BucketStrategy::Adaptive,
    ]
}

/// Strategy × online/offline sweep (sampling and VGC join through the
/// `KCORE_TECHNIQUES` env legs, which `new` applies on top).
fn all_configs() -> Vec<Config> {
    let mut out = Vec::new();
    for strategy in all_strategies() {
        for techniques in [Techniques::default(), Techniques::offline()] {
            out.push(Config { bucket_strategy: strategy, techniques, ..Config::default() });
        }
    }
    out
}

/// Arbitrary messy edge list: duplicates and self-loops allowed. Kept
/// small enough for the quadratic-ish truss recount oracle.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..32).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..120))
            .prop_map(|(n, edges)| GraphBuilder::new(n).edges(edges).build())
    })
}

fn assert_truss_matches_oracle(g: &CsrGraph) {
    let want = sequential_trussness(g);
    for config in all_configs() {
        let got = KTruss::new(config).run(g);
        assert_eq!(
            got.trussness(),
            want.as_slice(),
            "strategy {} + {:?} disagrees with the recount oracle",
            config.bucket_strategy,
            config.techniques.mode
        );
    }
}

fn assert_densest_sandwich(g: &CsrGraph) {
    let oracle = sequential_greedy_density(g);
    let coreness = bz_coreness(g);
    for config in all_configs() {
        let r = DensestSubgraph::new(config).run(g);
        let got = r.density();
        assert!(got <= oracle + 1e-9, "parallel {got} exceeds the finer greedy {oracle}");
        assert!(got * 2.0 + 1e-9 >= oracle, "parallel {got} below oracle/2 ({oracle})");
        // The curve is exactly the k-core densities.
        for (k, &d) in r.densities().iter().enumerate() {
            let nk = coreness.iter().filter(|&&c| c as usize >= k).count();
            let mk = g
                .edges()
                .filter(|&(u, v)| {
                    coreness[u as usize] as usize >= k && coreness[v as usize] as usize >= k
                })
                .count();
            let want = if nk == 0 { 0.0 } else { mk as f64 / nk as f64 };
            assert_eq!(d, want, "density of the {k}-core under {}", config.bucket_strategy);
        }
    }
}

proptest! {
    #[test]
    fn ktruss_matches_recount_oracle(g in arb_graph()) {
        assert_truss_matches_oracle(&g);
    }

    #[test]
    fn ktruss_on_powerlaw_matches_oracle(n in 10usize..60, seed in any::<u64>()) {
        assert_truss_matches_oracle(&gen::barabasi_albert(n, 3.min(n - 1), seed));
    }

    #[test]
    fn densest_sandwich_on_arbitrary_graphs(g in arb_graph()) {
        assert_densest_sandwich(&g);
    }

    #[test]
    fn densest_sandwich_on_powerlaw(n in 10usize..80, seed in any::<u64>()) {
        assert_densest_sandwich(&gen::barabasi_albert(n, 2.min(n - 1), seed));
    }

    #[test]
    fn trussness_is_bounded_by_coreness_plus_one(g in arb_graph()) {
        // Classical containment: the k-truss is a subgraph of the
        // (k-1)-core, so t(e) <= min(core(u), core(v)) + 1 for e={u,v}.
        let truss = KTruss::new(Config::default()).run(&g);
        let coreness = bz_coreness(&g);
        for ((u, v), t) in truss.edges() {
            let bound = coreness[u as usize].min(coreness[v as usize]) + 1;
            prop_assert!(
                t <= bound,
                "edge ({u},{v}): trussness {t} exceeds coreness bound {bound}"
            );
        }
    }
}

/// The engine-refactor regression guard: `PeelEngine`-based k-core must
/// be bit-identical to the pre-refactor coreness on the seed
/// generators, for every strategy. BZ is the witness (the pre-refactor
/// implementation matched it on these exact inputs).
#[test]
fn engine_kcore_bit_identical_on_seed_generators() {
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("path", gen::path(40)),
        ("cycle", gen::cycle(33)),
        ("star", gen::star(65)),
        ("complete", gen::complete(20)),
        ("bipartite", gen::complete_bipartite(4, 9)),
        ("grid2d", gen::grid2d(24, 17)),
        ("grid3d", gen::grid3d(6, 7, 8)),
        ("mesh", gen::mesh(15, 15)),
        ("road", gen::road(20, 20, 0.15, 0.1, 7)),
        ("erdos_renyi", gen::erdos_renyi(300, 900, 3)),
        ("barabasi_albert", gen::barabasi_albert(400, 3, 11)),
        ("rmat", gen::rmat(9, 8, 0.57, 0.19, 0.19, 5)),
        ("knn", gen::knn(250, 4, 13)),
        ("planted_core", gen::planted_core(200, 2, 40, 9)),
        ("hcns", gen::hcns(40)),
    ];
    for (label, g) in &graphs {
        let want = bz_coreness(g);
        for strategy in all_strategies() {
            let got = KCore::new(Config::with_strategy(strategy)).run(g);
            assert_eq!(got.coreness(), want.as_slice(), "{label} under {strategy}");
        }
    }
}

/// The three problems agree on their shared structure: the densest
/// run's coreness equals k-core's, and trussness respects it.
#[test]
fn problems_are_mutually_consistent() {
    let g = gen::planted_core(200, 2, 30, 17);
    let core = KCore::new(Config::default()).run(&g);
    let densest = DensestSubgraph::new(Config::default()).run(&g);
    assert_eq!(core.coreness(), densest.coreness());
    let truss = KTruss::new(Config::default()).run(&g);
    assert_eq!(truss.num_edges(), g.num_edges());
    assert!(truss.max_trussness() <= core.kmax() + 1);
}
