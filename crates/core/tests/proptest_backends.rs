//! Backend-equivalence matrix: every adjacency backend must be
//! observationally identical.
//!
//! The [`kcore_graph::GraphBackend`] seam promises that peeling never
//! sees which representation it runs over — plain owned CSR, the same
//! CSR mmapped zero-copy from disk, or the delta+varint compressed
//! blocks. These tests enforce the strongest version of that promise:
//!
//! * **coreness** and **densest** results must be *bit-identical*
//!   across plain/compressed/mmapped backends, on the seed generator
//!   families and on proptest-generated messy edge lists;
//! * **trussness** (a plain-only problem — the triangle kernels need
//!   slice adjacency) is covered transitively: the compressed encode
//!   must round-trip the exact graph, and the mmapped plain graph must
//!   produce identical trussness;
//! * the binary and compressed **on-disk formats** round-trip through
//!   real files, and corrupt/truncated files are rejected with errors
//!   rather than garbage graphs.
//!
//! Runs use `exact_config` so the matrix is deterministic under the
//! `KCORE_BACKEND` / `KCORE_TECHNIQUES` CI legs (the env-gate path
//! itself is pinned by the trace-snapshot suite).

use kcore::{Config, Decomposition};
use kcore_graph::{gen, io, CompressedCsr, CsrGraph, GraphBuilder};
use proptest::prelude::*;
use std::path::PathBuf;

/// Fresh per-test temp path (the file is removed at scope exit).
struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("kcore-backends-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir.join(name))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The three flavors of one graph: owned, compressed, and mmapped
/// (round-tripped through a real file so the zero-copy path runs).
fn flavors(g: &CsrGraph, tag: &str) -> (CompressedCsr, CsrGraph) {
    let compressed = CompressedCsr::from_graph(g);
    let path = TempPath::new(&format!("{tag}.kcg"));
    io::save_binary(g, &path.0).expect("save binary");
    let mapped = io::map_binary(&path.0).expect("map binary");
    (compressed, mapped)
}

fn seed_family() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("empty", CsrGraph::empty()),
        ("isolated", GraphBuilder::new(5).build()),
        ("cycle", gen::cycle(17)),
        ("grid", gen::grid2d(9, 7)),
        ("ba", gen::barabasi_albert(400, 3, 11)),
        ("er", gen::erdos_renyi(200, 600, 5)),
        ("rmat", gen::rmat(9, 8, 0.57, 0.19, 0.19, 3)),
        ("planted", gen::planted_core(200, 2, 40, 9)),
    ]
}

#[test]
fn coreness_is_bit_identical_across_backends() {
    for (tag, g) in seed_family() {
        let (compressed, mapped) = flavors(&g, &format!("core-{tag}"));
        let config = Config::default();
        let plain = Decomposition::kcore(&g).exact_config(config).run();
        let comp = Decomposition::kcore(&compressed).exact_config(config).run();
        let mmap = Decomposition::kcore(&mapped).exact_config(config).run();
        assert_eq!(plain.coreness(), comp.coreness(), "{tag}: compressed drifts");
        assert_eq!(plain.coreness(), mmap.coreness(), "{tag}: mmapped drifts");
    }
}

#[test]
fn densest_is_bit_identical_across_backends() {
    for (tag, g) in seed_family() {
        let (compressed, mapped) = flavors(&g, &format!("densest-{tag}"));
        let config = Config::default();
        let plain = Decomposition::densest(&g).exact_config(config).run();
        let comp = Decomposition::densest(&compressed).exact_config(config).run();
        let mmap = Decomposition::densest(&mapped).exact_config(config).run();
        // f64 equality on purpose: the histogram post-pass is
        // deterministic, so the whole density curve must match bitwise.
        assert_eq!(plain.densities(), comp.densities(), "{tag}: compressed curve drifts");
        assert_eq!(plain.best_k(), comp.best_k(), "{tag}: compressed best_k drifts");
        assert_eq!(plain.densities(), mmap.densities(), "{tag}: mmapped curve drifts");
        assert_eq!(plain.members(), mmap.members(), "{tag}: mmapped membership drifts");
    }
}

#[test]
fn trussness_covered_via_decode_roundtrip_and_mmap() {
    for (tag, g) in seed_family() {
        // Compressed leg, transitively: decode must reproduce the graph
        // bit-for-bit, so any ktruss answer over the decode is the
        // plain answer.
        let compressed = CompressedCsr::from_graph(&g);
        assert_eq!(compressed.decompress(), g, "{tag}: compressed round-trip");
        // Mmap leg, directly: trussness over the mapped flavor.
        let path = TempPath::new(&format!("truss-{tag}.kcg"));
        io::save_binary(&g, &path.0).expect("save binary");
        let mapped = io::map_binary(&path.0).expect("map binary");
        let config = Config::default();
        let plain = Decomposition::ktruss(&g).exact_config(config).run();
        let mmap = Decomposition::ktruss(&mapped).exact_config(config).run();
        assert_eq!(plain.trussness(), mmap.trussness(), "{tag}: mmapped trussness drifts");
    }
}

#[test]
fn compressed_format_round_trips_through_files() {
    for (tag, g) in seed_family() {
        let compressed = CompressedCsr::from_graph(&g);
        let path = TempPath::new(&format!("fmt-{tag}.kcc"));
        io::save_compressed(&compressed, &path.0).expect("save compressed");
        let loaded = io::load_compressed(&path.0).expect("load compressed");
        assert_eq!(loaded.decompress(), g, "{tag}: loaded compressed graph drifts");
        let mapped = io::map_compressed(&path.0).expect("map compressed");
        let config = Config::default();
        let plain = Decomposition::kcore(&g).exact_config(config).run();
        let got = Decomposition::kcore(&mapped).exact_config(config).run();
        assert_eq!(plain.coreness(), got.coreness(), "{tag}: mapped compressed drifts");
    }
}

#[test]
fn corrupt_and_truncated_files_are_rejected() {
    let g = gen::barabasi_albert(60, 3, 2);
    let bin = TempPath::new("corrupt.kcg");
    io::save_binary(&g, &bin.0).expect("save binary");
    let comp = TempPath::new("corrupt.kcc");
    io::save_compressed(&CompressedCsr::from_graph(&g), &comp.0).expect("save compressed");

    let good_bin = std::fs::read(&bin.0).expect("read back binary");
    let good_comp = std::fs::read(&comp.0).expect("read back compressed");

    // Truncation: drop the tail of the payload.
    std::fs::write(&bin.0, &good_bin[..good_bin.len() - 5]).expect("truncate binary");
    assert!(io::load_binary(&bin.0).is_err(), "truncated binary accepted");
    assert!(io::map_binary(&bin.0).is_err(), "truncated binary mapped");
    std::fs::write(&comp.0, &good_comp[..good_comp.len() - 5]).expect("truncate compressed");
    assert!(io::load_compressed(&comp.0).is_err(), "truncated compressed accepted");
    assert!(io::map_compressed(&comp.0).is_err(), "truncated compressed mapped");

    // Corrupt magic: every reader of either format must refuse, so a
    // file of one format can never be misread as the other.
    for (path, good) in [(&bin.0, &good_bin), (&comp.0, &good_comp)] {
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        std::fs::write(path, &bad).expect("corrupt");
        assert!(io::load_binary(path).is_err(), "bad-magic file accepted by load_binary");
        assert!(io::map_binary(path).is_err(), "bad-magic file accepted by map_binary");
        assert!(io::load_compressed(path).is_err(), "bad-magic file accepted by load_compressed");
        assert!(io::map_compressed(path).is_err(), "bad-magic file accepted by map_compressed");
    }
}

/// Arbitrary messy edge list: duplicates and self-loops allowed — the
/// builder normalizes, the backends must agree on the result.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..48).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..200))
            .prop_map(|(n, edges)| GraphBuilder::new(n).edges(edges).build())
    })
}

proptest! {
    #[test]
    fn arbitrary_graphs_agree_across_backends(g in arb_graph(), case in 0u32..u32::MAX) {
        let compressed = CompressedCsr::from_graph(&g);
        prop_assert_eq!(compressed.decompress(), g.clone());
        prop_assert_eq!(compressed.num_arcs(), g.num_arcs());

        let path = TempPath::new(&format!("prop-{case}.kcg"));
        io::save_binary(&g, &path.0).expect("save binary");
        let mapped = io::map_binary(&path.0).expect("map binary");

        let config = Config::default();
        let plain = Decomposition::kcore(&g).exact_config(config).run();
        let comp = Decomposition::kcore(&compressed).exact_config(config).run();
        let mmap = Decomposition::kcore(&mapped).exact_config(config).run();
        prop_assert_eq!(plain.coreness(), comp.coreness());
        prop_assert_eq!(plain.coreness(), mmap.coreness());
    }
}
