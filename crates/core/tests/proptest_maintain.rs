//! Property-based correctness for batch-dynamic coreness maintenance:
//! after every applied batch — random inserts (including universe
//! growth), random deletes of real edges, and no-op changes mixed in —
//! the maintained coreness must be bit-identical to a full
//! Batagelj–Zaveršnik recompute on a fresh CSR snapshot of the logical
//! graph, at every version, for every bucket strategy. The affected
//! region must stay within the vertex universe throughout.

use kcore::bz::bz_coreness;
use kcore::{BucketStrategy, Config, DynamicGraph};
use kcore_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

fn all_strategies() -> Vec<BucketStrategy> {
    vec![
        BucketStrategy::Single,
        BucketStrategy::Fixed(16),
        BucketStrategy::Hierarchical,
        BucketStrategy::Adaptive,
    ]
}

/// Arbitrary messy base graph: duplicates and self-loops allowed (the
/// builder drops them), plus the empty and edgeless corners.
fn arb_base() -> impl Strategy<Value = CsrGraph> {
    (1usize..28).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..96))
            .prop_map(|(n, edges)| GraphBuilder::new(n).edges(edges).build())
    })
}

type Batch = (Vec<(VertexId, VertexId)>, Vec<u64>);

/// A batch: insert candidates drawn from a range slightly beyond the
/// base universe (exercising vertex growth), delete candidates as raw
/// picks resolved modulo the *current* edge list (so deletes really hit
/// edges, not just the absent-edge no-op path).
fn arb_batches() -> impl Strategy<Value = Vec<Batch>> {
    let insert = (0u32..32, 0u32..32);
    proptest::collection::vec(
        (proptest::collection::vec(insert, 0..5), proptest::collection::vec(any::<u64>(), 0..4)),
        1..5,
    )
}

/// Resolves raw delete picks against the current logical edge list.
fn resolve_deletes(dg: &DynamicGraph, picks: &[u64]) -> Vec<(u32, u32)> {
    let edges: Vec<(u32, u32)> = dg.graph().edges().collect();
    if edges.is_empty() {
        Vec::new()
    } else {
        picks.iter().map(|&p| edges[(p % edges.len() as u64) as usize]).collect()
    }
}

/// The shim's prop_assert macros are plain asserts (no shrinking), so a
/// panicking helper loses nothing.
fn replay_and_check(base: &CsrGraph, batches: &[Batch], strategy: BucketStrategy) {
    let mut dg = DynamicGraph::new(base.clone(), Config::with_strategy(strategy));
    assert_eq!(dg.coreness(), bz_coreness(base).as_slice(), "construction under {strategy}");
    for (inserts, delete_picks) in batches {
        let deletes = resolve_deletes(&dg, delete_picks);
        let version = dg.apply_batch(inserts, &deletes);
        assert_eq!(version, dg.version());
        let want = bz_coreness(&dg.snapshot());
        assert_eq!(
            dg.coreness(),
            want.as_slice(),
            "version {version:?} under {strategy} diverged from the BZ oracle"
        );
        let stats = dg.last_stats();
        assert!(
            stats.region <= dg.graph().num_vertices(),
            "affected region {} exceeds the universe {}",
            stats.region,
            dg.graph().num_vertices()
        );
        assert!(stats.seeds <= 2 * (stats.inserted + stats.deleted));
    }
}

proptest! {
    #[test]
    fn batches_stay_bit_identical_to_full_recompute(
        base in arb_base(),
        batches in arb_batches(),
    ) {
        for strategy in all_strategies() {
            replay_and_check(&base, &batches, strategy);
        }
    }

    #[test]
    fn insert_only_and_delete_only_batches(
        base in arb_base(),
        edges in proptest::collection::vec((0u32..24, 0u32..24), 1..8),
    ) {
        // Insert a batch of genuinely fresh edges, then delete exactly
        // the same batch: the final coreness must equal the base's
        // (modulo universe growth) and every intermediate version must
        // match the oracle. Edges already in the base must be filtered
        // out — for those the insert is a no-op but the delete is not,
        // so the round trip would legitimately change the graph.
        let base_overlay = kcore_graph::OverlayGraph::new(base.clone());
        let fresh: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(u, v)| u != v && !base_overlay.has_edge(u, v))
            .collect();
        let mut dg = DynamicGraph::new(base.clone(), Config::default());
        dg.apply_batch(&fresh, &[]);
        prop_assert_eq!(dg.coreness(), bz_coreness(&dg.snapshot()).as_slice());
        dg.apply_batch(&[], &fresh);
        let want = bz_coreness(&dg.snapshot());
        prop_assert_eq!(dg.coreness(), want.as_slice());
        let n = base.num_vertices();
        prop_assert_eq!(&dg.coreness()[..n], bz_coreness(&base).as_slice());
        prop_assert!(dg.coreness()[n..].iter().all(|&c| c == 0));
    }

    #[test]
    fn compaction_preserves_the_decomposition(
        base in arb_base(),
        batches in arb_batches(),
    ) {
        // Force compaction after virtually every batch; the rebuilt CSR
        // must carry the same standing coreness.
        let mut dg = DynamicGraph::new(base.clone(), Config::default());
        dg.set_compaction_fraction(0.0);
        for (inserts, delete_picks) in &batches {
            let deletes = resolve_deletes(&dg, delete_picks);
            dg.apply_batch(inserts, &deletes);
            prop_assert_eq!(dg.graph().overlay_arcs(), 0, "compaction must have run");
            prop_assert_eq!(dg.coreness(), bz_coreness(&dg.snapshot()).as_slice());
        }
    }
}

/// The confinement guarantee in its most visible form: a single edge
/// change far away from the dense part of the graph re-peels only a
/// handful of vertices, never the whole graph.
#[test]
fn far_away_edge_confines_the_region() {
    // 40 separate 4-cliques (coreness 3) threaded on a path of
    // connector vertices (coreness 1): vertices 5i..5i+4 per block.
    let blocks = 40u32;
    let mut b = GraphBuilder::new((5 * blocks) as usize);
    for i in 0..blocks {
        let v = 5 * i;
        b.push_edge(v, v + 1);
        b.push_edge(v, v + 2);
        b.push_edge(v, v + 3);
        b.push_edge(v + 1, v + 2);
        b.push_edge(v + 1, v + 3);
        b.push_edge(v + 2, v + 3);
        b.push_edge(v + 3, v + 4);
        if i + 1 < blocks {
            b.push_edge(v + 4, v + 5);
        }
    }
    let g = b.build();
    let n = g.num_vertices();
    let mut dg = DynamicGraph::new(g, Config::default());

    // Delete an edge inside the last clique: both endpoints have
    // coreness 3, so the confinement range is exactly {3} and the BFS
    // cannot cross the coreness-1 connector chain into other blocks.
    let (u, v) = (5 * (blocks - 1), 5 * (blocks - 1) + 1);
    dg.apply_batch(&[], &[(u, v)]);
    let stats = dg.last_stats();
    assert!(!stats.full_recompute, "a single far-away edge must not trigger a full re-peel");
    assert!(stats.region * 4 < n, "region {} should be a small fraction of n = {n}", stats.region);
    assert_eq!(stats.confinement, (3, 3), "both endpoints sit inside one clique");
    assert_eq!(stats.region, 4, "only the touched clique is re-peeled");
    assert_eq!(dg.coreness(), bz_coreness(&dg.snapshot()).as_slice());
}
